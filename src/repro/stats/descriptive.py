"""Descriptive statistics (mean, std, standard error, CIs).

Used to aggregate repeated simulated deployments the way the paper averages
over 10 runs and draws standard-error bars (Figure 11, Figure 13).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class Summary:
    """Summary statistics of one sample."""

    n: int
    mean: float
    std: float
    stderr: float
    ci_low: float
    ci_high: float
    confidence: float

    def as_row(self) -> list:
        """Row form used by the report tables."""
        return [self.n, self.mean, self.std, self.stderr, self.ci_low, self.ci_high]


def standard_error(values: Iterable[float]) -> float:
    """Standard error of the mean (ddof=1); 0.0 for samples of size < 2."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        return 0.0
    return float(arr.std(ddof=1) / np.sqrt(arr.size))


def summarize(values: Iterable[float], confidence: float = 0.95) -> Summary:
    """Summarize a sample with a Student-t confidence interval for the mean."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    mean = float(arr.mean())
    if arr.size == 1:
        return Summary(1, mean, 0.0, 0.0, mean, mean, confidence)
    std = float(arr.std(ddof=1))
    se = std / float(np.sqrt(arr.size))
    half = float(sps.t.ppf(0.5 + confidence / 2.0, df=arr.size - 1)) * se
    return Summary(
        n=int(arr.size),
        mean=mean,
        std=std,
        stderr=se,
        ci_low=mean - half,
        ci_high=mean + half,
        confidence=confidence,
    )
