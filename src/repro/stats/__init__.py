"""Descriptive statistics and significance tests used by the evaluation."""

from repro.stats.descriptive import Summary, summarize, standard_error
from repro.stats.significance import (
    TTestResult,
    welch_t_test,
    paired_t_test,
    linear_fit_significance,
)

__all__ = [
    "Summary",
    "summarize",
    "standard_error",
    "TTestResult",
    "welch_t_test",
    "paired_t_test",
    "linear_fit_significance",
]
