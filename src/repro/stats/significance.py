"""Significance tests backing the paper's statistical claims.

The paper reports (i) a *statistically significant* advantage of
StratRec-guided deployments (Figure 13) and (ii) linear fits whose (α, β)
lie within the 90% confidence interval of the fitted line (Table 6).  This
module provides exactly those tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np
from scipy import stats as sps


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample or paired t-test."""

    statistic: float
    p_value: float
    dof: float
    mean_difference: float

    def significant(self, alpha: float = 0.05) -> bool:
        """True iff the null hypothesis is rejected at level ``alpha``."""
        return self.p_value < alpha


def _as_array(name: str, values: Iterable[float]) -> np.ndarray:
    arr = np.asarray(list(values), dtype=float)
    if arr.size < 2:
        raise ValueError(f"{name} needs at least 2 observations, got {arr.size}")
    return arr


def welch_t_test(sample_a: Iterable[float], sample_b: Iterable[float]) -> TTestResult:
    """Welch two-sample t-test (unequal variances) of mean(a) != mean(b)."""
    a = _as_array("sample_a", sample_a)
    b = _as_array("sample_b", sample_b)
    result = sps.ttest_ind(a, b, equal_var=False)
    return TTestResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        dof=float(result.df),
        mean_difference=float(a.mean() - b.mean()),
    )


def paired_t_test(sample_a: Iterable[float], sample_b: Iterable[float]) -> TTestResult:
    """Paired t-test for mirror deployments of the same tasks (Figure 13)."""
    a = _as_array("sample_a", sample_a)
    b = _as_array("sample_b", sample_b)
    if a.size != b.size:
        raise ValueError(f"paired samples must match in size ({a.size} vs {b.size})")
    result = sps.ttest_rel(a, b)
    return TTestResult(
        statistic=float(result.statistic),
        p_value=float(result.pvalue),
        dof=float(a.size - 1),
        mean_difference=float(a.mean() - b.mean()),
    )


@dataclass(frozen=True)
class SlopeSignificance:
    """Significance of the slope of a simple linear regression."""

    slope: float
    intercept: float
    r_squared: float
    slope_p_value: float
    slope_ci_low: float
    slope_ci_high: float
    confidence: float

    def slope_in_ci(self, slope: float) -> bool:
        """True iff ``slope`` lies inside the fitted slope's CI."""
        return self.slope_ci_low <= slope <= self.slope_ci_high


def linear_fit_significance(
    x: Sequence[float], y: Sequence[float], confidence: float = 0.90
) -> SlopeSignificance:
    """OLS fit of ``y = slope*x + intercept`` with a slope CI.

    Table 6's claim is that the estimated (α, β) lie within the 90%
    confidence interval of the fitted line; this exposes the interval.
    """
    x_arr = _as_array("x", x)
    y_arr = _as_array("y", y)
    if x_arr.size != y_arr.size:
        raise ValueError("x and y must have equal length")
    if x_arr.size < 3:
        raise ValueError("need at least 3 points for a slope CI")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    fit = sps.linregress(x_arr, y_arr)
    dof = x_arr.size - 2
    t_crit = float(sps.t.ppf(0.5 + confidence / 2.0, df=dof))
    half = t_crit * float(fit.stderr)
    return SlopeSignificance(
        slope=float(fit.slope),
        intercept=float(fit.intercept),
        r_squared=float(fit.rvalue) ** 2,
        slope_p_value=float(fit.pvalue),
        slope_ci_low=float(fit.slope) - half,
        slope_ci_high=float(fit.slope) + half,
        confidence=confidence,
    )
