"""repro — reproduction of "Recommending Deployment Strategies for
Collaborative Tasks" (Wei, Basu Roy, Amer-Yahia; SIGMOD 2020).

Public API highlights:

* :class:`repro.TriParams`, :class:`repro.DeploymentRequest` — the
  3-parameter deployment space.
* :class:`repro.StrategyEnsemble` — candidate strategies with linear
  parameter models (Equation 4).
* :class:`repro.BatchStrat` — batch deployment recommendation
  (throughput exact, pay-off 1/2-approximate).
* :class:`repro.ADPaRExact` — exact alternative-parameter recommendation.
* :class:`repro.Aggregator` / :class:`repro.StratRec` — the end-to-end
  middle layer.
* :mod:`repro.platform` / :mod:`repro.execution` — the simulated crowd
  platform and strategy execution engine standing in for AMT.
* :mod:`repro.experiments` — regenerates every table and figure of §5.
"""

from repro.core import (
    ADPaRExact,
    ADPaRResult,
    Aggregator,
    AggregatorReport,
    BatchOutcome,
    BatchStrat,
    DeploymentRequest,
    RequestResolution,
    ResolutionStatus,
    StratRec,
    Strategy,
    StrategyEnsemble,
    StrategyProfile,
    TriParams,
    full_catalog,
    make_requests,
    paper_catalog,
)
from repro.exceptions import (
    InfeasibleRequestError,
    ModelNotFittedError,
    ReproError,
    UnknownStrategyError,
)
from repro.modeling import AvailabilityDistribution, LinearModel, ModelBank, ParamModels

__version__ = "1.0.0"

__all__ = [
    "TriParams",
    "DeploymentRequest",
    "make_requests",
    "Strategy",
    "StrategyProfile",
    "StrategyEnsemble",
    "full_catalog",
    "paper_catalog",
    "BatchStrat",
    "BatchOutcome",
    "ADPaRExact",
    "ADPaRResult",
    "Aggregator",
    "AggregatorReport",
    "RequestResolution",
    "ResolutionStatus",
    "StratRec",
    "LinearModel",
    "ParamModels",
    "ModelBank",
    "AvailabilityDistribution",
    "ReproError",
    "InfeasibleRequestError",
    "ModelNotFittedError",
    "UnknownStrategyError",
    "__version__",
]
