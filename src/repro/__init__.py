"""repro — reproduction of "Recommending Deployment Strategies for
Collaborative Tasks" (Wei, Basu Roy, Amer-Yahia; SIGMOD 2020).

Public API highlights:

* :class:`repro.TriParams`, :class:`repro.DeploymentRequest` — the
  3-parameter deployment space.
* :class:`repro.StrategyEnsemble` — candidate strategies with linear
  parameter models (Equation 4).
* :class:`repro.RecommendationEngine` — the unified service layer all
  traffic flows through: pluggable planner backends, pluggable ADPaR
  solver backends (scalar and batch —
  :meth:`~repro.RecommendationEngine.recommend_alternatives`), a shared
  workforce/ADPaR cache, batch resolution, and streaming sessions
  (:meth:`~repro.RecommendationEngine.open_session`).
* :class:`repro.EngineService` / :mod:`repro.api` — the versioned
  service API over the engine: wire-format DTOs with lossless JSON
  round-trip, pooled engines, opaque-id streaming sessions, typed error
  envelopes, and a stdlib HTTP transport (``repro serve``).
* :class:`repro.BatchStrat` — batch deployment recommendation
  (throughput exact, pay-off 1/2-approximate); the ``batch-greedy``
  backend.
* :class:`repro.ADPaRExact` — exact alternative-parameter recommendation.
* :class:`repro.Aggregator` / :class:`repro.StratRec` — the end-to-end
  middle layer (now thin shims over the engine).
* :mod:`repro.platform` / :mod:`repro.execution` — the simulated crowd
  platform and strategy execution engine standing in for AMT.
* :mod:`repro.experiments` — regenerates every table and figure of §5.
"""

from repro.core import (
    ADPaRExact,
    ADPaRResult,
    RelaxationSpace,
    Aggregator,
    AggregatorReport,
    BatchOutcome,
    BatchStrat,
    DeploymentRequest,
    RequestResolution,
    ResolutionStatus,
    StratRec,
    Strategy,
    StrategyEnsemble,
    StrategyProfile,
    TriParams,
    full_catalog,
    make_requests,
    paper_catalog,
)
from repro.engine import (
    AdparSolver,
    EngineCache,
    EngineSession,
    PlannerRegistry,
    RecommendationEngine,
    SolverContext,
    SolverRegistry,
    default_registry,
    default_solver_registry,
)
from repro.api import EngineService, EngineSpec, EnsembleRef
from repro.exceptions import (
    ApiError,
    InfeasibleRequestError,
    ModelNotFittedError,
    ReproError,
    UnknownPlannerError,
    UnknownSolverError,
    UnknownStrategyError,
)
from repro.modeling import AvailabilityDistribution, LinearModel, ModelBank, ParamModels

__version__ = "1.1.0"

__all__ = [
    "TriParams",
    "DeploymentRequest",
    "make_requests",
    "Strategy",
    "StrategyProfile",
    "StrategyEnsemble",
    "full_catalog",
    "paper_catalog",
    "BatchStrat",
    "BatchOutcome",
    "ADPaRExact",
    "ADPaRResult",
    "RelaxationSpace",
    "Aggregator",
    "AggregatorReport",
    "RequestResolution",
    "ResolutionStatus",
    "StratRec",
    "RecommendationEngine",
    "EngineService",
    "EngineSpec",
    "EnsembleRef",
    "EngineSession",
    "EngineCache",
    "PlannerRegistry",
    "default_registry",
    "UnknownPlannerError",
    "AdparSolver",
    "SolverContext",
    "SolverRegistry",
    "default_solver_registry",
    "UnknownSolverError",
    "LinearModel",
    "ParamModels",
    "ModelBank",
    "AvailabilityDistribution",
    "ReproError",
    "ApiError",
    "InfeasibleRequestError",
    "ModelNotFittedError",
    "UnknownStrategyError",
    "__version__",
]
