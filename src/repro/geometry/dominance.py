"""Dominance/coverage predicates over point sets.

"Coverage" is the paper's satisfaction relation in the unified space: an
alternative deployment ``d'`` covers strategy ``s`` iff ``s <= d'``
componentwise (every parameter of the strategy fits the relaxed bounds).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.geometry.point import Point3, points_to_array


def covers(candidate: Point3, strategy: Point3) -> bool:
    """True iff ``candidate`` covers ``strategy`` (``strategy <= candidate``)."""
    return strategy.dominates(candidate)


def coverage_count(candidate: Point3, strategies: Sequence[Point3]) -> int:
    """Number of strategies covered by ``candidate``."""
    arr = points_to_array(list(strategies))
    if arr.size == 0:
        return 0
    c = candidate.as_array()
    return int((arr <= c + 1e-12).all(axis=1).sum())


def covered_indices(candidate: Point3, strategies: Sequence[Point3]) -> list[int]:
    """Indices of the strategies covered by ``candidate`` (ascending)."""
    arr = points_to_array(list(strategies))
    if arr.size == 0:
        return []
    c = candidate.as_array()
    mask = (arr <= c + 1e-12).all(axis=1)
    return [int(i) for i in np.flatnonzero(mask)]


def pareto_minima(points: Sequence[Point3]) -> list[int]:
    """Indices of the Pareto-minimal points (no other point dominates them).

    Strategies that are Pareto-dominated can never be the *unique* reason a
    relaxation is optimal, which is the geometric fact behind the paper's
    sweep pruning (Figure 8).  Ties count as dominance only when the points
    differ, so duplicate points are all kept.
    """
    pts = list(points)
    arr = points_to_array(pts)
    n = len(pts)
    keep: list[int] = []
    for i in range(n):
        dominated = False
        for j in range(n):
            if j == i:
                continue
            if (arr[j] <= arr[i]).all() and (arr[j] < arr[i]).any():
                dominated = True
                break
        if not dominated:
            keep.append(i)
    return keep
