"""Computational-geometry substrate for ADPaR.

ADPaR-Exact (paper §4) treats each strategy as a point in a 3-D
smaller-is-better space and a deployment request as an axis-parallel box
anchored at the origin.  This package provides those primitives plus the
sweep-line event machinery the algorithm is built from.
"""

from repro.geometry.point import Point3
from repro.geometry.box import Box3
from repro.geometry.dominance import (
    covers,
    coverage_count,
    covered_indices,
    pareto_minima,
)
from repro.geometry.sweepline import (
    ParetoSweep,
    SweepEvent,
    block_frontier,
    build_relaxation_events,
    relaxation_event_arrays,
)

__all__ = [
    "Point3",
    "Box3",
    "covers",
    "coverage_count",
    "covered_indices",
    "pareto_minima",
    "SweepEvent",
    "build_relaxation_events",
    "relaxation_event_arrays",
    "ParetoSweep",
    "block_frontier",
]
