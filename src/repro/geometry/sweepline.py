"""Sweep-line machinery used by ADPaR-Exact.

The paper (§4.1, Tables 2–5) sorts all ``3·|S|`` per-dimension relaxation
values into one event list ``R`` with parallel index/dimension arrays
``I``/``D``, then advances a cursor while maintaining which strategies are
covered.  :func:`build_relaxation_events` constructs exactly that event
list.  :class:`ParetoSweep` is the 2-D subroutine: given points with two
remaining free dimensions it enumerates the Pareto frontier of
``(Y, Z)`` pairs such that choosing bound ``(Y, Z)`` covers at least ``k``
points — a sorted sweep over one dimension with a size-``k`` max-heap over
the other.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

DIM_LABELS = ("C", "Q", "L")


@dataclass(frozen=True)
class SweepEvent:
    """One entry of the paper's sorted relaxation list.

    ``value`` is the relaxation amount (list ``R``), ``strategy`` the
    strategy index (list ``I``) and ``dimension`` the parameter index in
    ``(cost, quality, latency)`` order (list ``D``, labels ``C/Q/L``).
    """

    value: float
    strategy: int
    dimension: int

    @property
    def dimension_label(self) -> str:
        """Paper-style label of the relaxed parameter."""
        return DIM_LABELS[self.dimension]


def relaxation_event_arrays(
    relaxations: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The paper's sorted ``(R, I, D)`` lists as three parallel arrays.

    Pure NumPy event construction: the ``(n, 3)`` relaxation matrix is
    flattened and lexsorted by (value, strategy, dimension) in one pass —
    no per-event Python objects.  :func:`build_relaxation_events` wraps
    the same arrays into :class:`SweepEvent` objects for trace output.
    """
    arr = np.asarray(relaxations, dtype=float)
    if arr.ndim != 2 or arr.shape[1] != 3:
        raise ValueError(f"relaxations must have shape (n, 3), got {arr.shape}")
    n = arr.shape[0]
    values = arr.ravel()  # row-major: index i*3 + d
    strategies = np.repeat(np.arange(n), 3)
    dimensions = np.tile(np.arange(3), n)
    order = np.lexsort((dimensions, strategies, values))
    return values[order], strategies[order], dimensions[order]


def build_relaxation_events(relaxations: np.ndarray) -> list[SweepEvent]:
    """Flatten an ``(n, 3)`` relaxation matrix into the sorted event list.

    Ties are broken by (value, strategy, dimension) so the order — and hence
    any trace output — is deterministic.
    """
    values, strategies, dimensions = relaxation_event_arrays(relaxations)
    return [
        SweepEvent(float(v), int(i), int(d))
        for v, i, d in zip(values, strategies, dimensions)
    ]


class ParetoSweep:
    """Enumerate Pareto-optimal 2-D covering bounds for ``k`` points.

    Given ``n`` points ``(y_i, z_i)`` (both smaller-is-better relaxations),
    a bound ``(Y, Z)`` covers point ``i`` iff ``y_i <= Y`` and ``z_i <= Z``.
    :meth:`frontier` yields every Pareto-minimal bound covering at least
    ``k`` points, in increasing ``Y`` order, in ``O(n log n)``.

    This is the discretized form of the paper's 2-D projection step
    (Figure 5b): after fixing one parameter, the best completion relaxes the
    remaining two to coordinates of actual strategies.
    """

    def __init__(self, ys: Sequence[float], zs: Sequence[float]):
        self._ys = np.asarray(ys, dtype=float)
        self._zs = np.asarray(zs, dtype=float)
        if self._ys.shape != self._zs.shape or self._ys.ndim != 1:
            raise ValueError("ys and zs must be equal-length 1-D sequences")

    def frontier(self, k: int) -> Iterator[tuple[float, float]]:
        """Yield Pareto-minimal ``(Y, Z)`` bounds covering >= k points."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        n = self._ys.size
        if n < k:
            return
        order = np.lexsort((self._zs, self._ys))
        heap: list[float] = []  # max-heap over z via negation
        best_z = np.inf
        for idx in order:
            z = float(self._zs[idx])
            if len(heap) < k:
                heapq.heappush(heap, -z)
            elif z < -heap[0]:
                heapq.heapreplace(heap, -z)
            else:
                # z does not improve the k smallest so far; the bound at this
                # Y is identical to the previous one — skip the duplicate.
                continue
            if len(heap) == k:
                y_bound = float(self._ys[idx])
                z_bound = -heap[0]
                if z_bound < best_z:
                    best_z = z_bound
                    yield (y_bound, z_bound)

    def frontier_blocks(
        self, k: int, block: int = 4096
    ) -> Iterator[tuple[float, float]]:
        """Array-based :meth:`frontier`: identical bounds, block at a time.

        Same contract and — pair for pair — the same yielded values as
        :meth:`frontier`, but the per-point Python loop is replaced by
        NumPy filtering over whole candidate blocks (see
        :func:`block_frontier`).  This is the path the vectorized ADPaR
        backend sweeps with; :meth:`frontier` remains the heap reference
        the property tests compare against.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if self._ys.size < k:
            return
        order = np.lexsort((self._zs, self._ys))
        yield from block_frontier(self._ys[order], self._zs[order], k, block=block)

    def best_bound(self, k: int) -> "tuple[float, float] | None":
        """The frontier bound minimizing ``Y² + Z²`` (ADPaR's objective).

        Enumerates via :meth:`frontier_blocks` — pair for pair the same
        bounds as the heap reference, minus the per-point Python loop —
        so ADPaR callers get the block-filtered path by default.
        """
        best = None
        best_obj = np.inf
        for y, z in self.frontier_blocks(k):
            obj = y * y + z * z
            if obj < best_obj:
                best_obj = obj
                best = (y, z)
        return best


def block_frontier(
    ys: np.ndarray, zs: np.ndarray, k: int, block: int = 4096
) -> Iterator[tuple[float, float]]:
    """Pareto frontier over points already sorted by ``(y, z)``.

    Yields exactly the pairs :meth:`ParetoSweep.frontier` yields — the
    running size-``k`` heap over ``z`` only ever shrinks its maximum, so
    any point whose ``z`` is not below the heap's maximum at the start of
    its block cannot improve the bound later in that block either.  Whole
    blocks are therefore filtered with one NumPy comparison and Python
    touches only the (few) improving points, which is what makes the
    vectorized ADPaR sweep fast on large ensembles.

    ``ys``/``zs`` must be float arrays pre-sorted lexicographically by
    ``(y, z, original index)`` — callers with unsorted data should use
    :meth:`ParetoSweep.frontier_blocks` instead.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    n = ys.size
    if n < k:
        return
    heap = [-float(z) for z in zs[:k]]
    heapq.heapify(heap)
    z_bound = -heap[0]
    best_z = z_bound
    yield (float(ys[k - 1]), z_bound)
    i = k
    while i < n:
        j = min(i + block, n)
        chunk = zs[i:j]
        # Block-min gate: if no z in the block beats the current heap
        # maximum, the flatnonzero scan below would come back empty —
        # one min() settles the whole block without the boolean temp.
        if float(chunk.min()) >= -heap[0]:
            i = j
            continue
        for offset in np.flatnonzero(chunk < -heap[0]):
            z = float(zs[i + offset])
            if z >= -heap[0]:
                # The heap maximum dropped below z since the block filter.
                continue
            heapq.heapreplace(heap, -z)
            z_bound = -heap[0]
            if z_bound < best_z:
                best_z = z_bound
                yield (float(ys[i + offset]), z_bound)
        i = j
