"""Block-summary index over a lex-sorted 2-D point set.

The ADPaR sweep spends its time enumerating k-coverage Pareto frontiers
over prefixes of an admission order (strategies enter as the cost
relaxation grows).  :class:`FrontierIndex` stores the points sorted by
``(y, z)`` together with two per-block summary columns — the minimum
``z`` and the minimum admission rank per block (the "level/subtree-size"
trick of window-pruned XPath evaluation, applied to a flat sweep) — so a
frontier enumeration can discard a whole block with two scalar
comparisons:

* ``block_min_rank >= rank_limit``: no point of the block has entered
  yet, so the block contributes nothing to this prefix.
* ``block_min_z >= current bound``: once the size-``k`` heap is full, no
  point of the block can shrink its maximum, so the block cannot yield a
  frontier improvement.

:meth:`FrontierIndex.frontier` reproduces — pair for pair — what
:func:`repro.geometry.sweepline.block_frontier` yields over the same
restricted point sequence; the pruning only skips work that provably
cannot yield.

:func:`repair_sorted_order` is the incremental half: when a few points
move (one availability tick re-estimates only the availability-dependent
strategies), a previously sorted order is *repaired* by merging the
displaced elements back instead of re-argsorting the full array.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

__all__ = [
    "FrontierCursor",
    "FrontierIndex",
    "merge_into_sorted",
    "repair_sorted_order",
]

#: Re-sort from scratch once more than this fraction of an order's
#: elements were displaced — merging stops paying below ~n/8 movers.
_REPAIR_FRACTION = 0.125


def _merge_back(
    kept: np.ndarray, movers: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Merge value-sorted ``movers`` into the still-sorted ``kept`` order."""
    positions = np.searchsorted(values[kept], values[movers], side="left")
    out = np.empty(kept.size + movers.size, dtype=kept.dtype)
    dest = positions + np.arange(movers.size, dtype=positions.dtype)
    slot = np.ones(out.size, dtype=bool)
    slot[dest] = False
    out[slot] = kept
    out[dest] = movers
    return out


def repair_sorted_order(
    order: np.ndarray,
    values: np.ndarray,
    changed: "np.ndarray | None" = None,
) -> np.ndarray:
    """A permutation sorting ``values`` ascending, repaired from ``order``.

    ``order`` is a prior valid sort order for a *near-sorted* update of
    ``values`` (e.g. an availability tick moved a handful of points).
    The out-of-place elements are extracted, sorted among themselves
    (``O(d log d)`` for ``d`` movers), and merged back with one
    ``searchsorted``.  When the caller knows which elements it updated
    it passes their indices as ``changed`` and the ``O(n)``
    displacement-detection pass (gather + running maximum) is skipped
    entirely — the delta path of an availability tick.  Without
    ``changed``, displaced elements are detected as those strictly
    below the running maximum of the permuted values.  Falls back to a
    full ``argsort`` when more than an eighth of the elements moved, so
    the repair is never slower than a rebuild by more than the
    detection pass.

    The result is a valid ascending order for ``values``; tie order
    among equal values is unspecified (every consumer in this codebase
    is tie-order-insensitive — they read sorted *values* or value-level
    frontiers).
    """
    if changed is not None:
        if changed.size == 0:
            return order
        if changed.size > order.size * _REPAIR_FRACTION:
            permuted = values[order]
            return order[np.argsort(permuted, kind="stable")]
        in_changed = np.zeros(order.size, dtype=bool)
        in_changed[changed] = True
        kept = order[~in_changed[order]]
        movers = changed[np.argsort(values[changed], kind="stable")]
        return _merge_back(kept, movers, values)
    permuted = values[order]
    displaced = permuted < np.maximum.accumulate(permuted)
    moved = int(np.count_nonzero(displaced))
    if moved == 0:
        return order
    if moved > order.size * _REPAIR_FRACTION:
        # Near-sorted fallback: sorting the *permuted* values lets the
        # stable mergesort exploit the long runs the old order still
        # has, instead of starting from a random permutation.
        return order[np.argsort(permuted, kind="stable")]
    kept = order[~displaced]
    movers = order[displaced]
    movers = movers[np.argsort(values[movers], kind="stable")]
    return _merge_back(kept, movers, values)


def merge_into_sorted(
    kept: np.ndarray,
    kept_values: np.ndarray,
    mover_rows: np.ndarray,
    mover_values: np.ndarray,
    out_order: "np.ndarray | None" = None,
    out_values: "np.ndarray | None" = None,
    assume_sorted: bool = False,
) -> "tuple[np.ndarray, np.ndarray]":
    """Merge movers into a fixed sorted skeleton: ``(order, sorted)``.

    ``kept``/``kept_values`` are an immutable, already-sorted skeleton
    (rows whose values never change); ``mover_rows`` hold the
    ``mover_values`` that vary.  The movers are sorted among themselves
    (``O(m log m)``), located with one binary search against the
    skeleton, and both the combined order and the combined sorted
    column are written with sequential scatters — no random ``O(n)``
    gather anywhere, which is what keeps an availability tick a small
    fraction of a rebuild.  Tie order among equal values is
    unspecified, as everywhere in the repair machinery.

    ``out_order``/``out_values`` — optional destination buffers of the
    combined length — let the availability-tick chain recycle warm
    memory instead of faulting in fresh pages every tick.
    ``assume_sorted`` promises the movers already arrive value-sorted
    (the tick chain revalidates and reuses the previous tick's mover
    order, which rarely changes under a small availability step).
    """
    if assume_sorted:
        movers = mover_rows
        moved_values = mover_values
    else:
        by_value = np.argsort(mover_values, kind="stable")
        movers = mover_rows[by_value]
        moved_values = mover_values[by_value]
    positions = np.searchsorted(kept_values, moved_values, side="left")
    dest = positions + np.arange(movers.size, dtype=positions.dtype)
    n = kept.size + movers.size
    slot = np.ones(n, dtype=bool)
    slot[dest] = False
    order = out_order if out_order is not None else np.empty(n, dtype=kept.dtype)
    order[slot] = kept
    order[dest] = movers
    merged = (
        out_values if out_values is not None else np.empty(n, dtype=kept_values.dtype)
    )
    merged[slot] = kept_values
    merged[dest] = moved_values
    return order, merged


class FrontierIndex:
    """Pruned k-coverage frontier enumeration over ``(y, z)``-sorted points.

    Parameters
    ----------
    ys, zs:
        Point coordinates, pre-sorted ascending by ``y`` (ties in any
        order — the value-level frontier minimum is tie-invariant).
    ranks:
        Optional admission rank per row (position in the sweep's
        entry order).  Required for :meth:`frontier` calls that pass
        ``rank_limit``.
    block:
        Rows per summary block.
    """

    def __init__(
        self,
        ys: np.ndarray,
        zs: np.ndarray,
        ranks: "np.ndarray | None" = None,
        block: int = 512,
    ):
        if block < 1:
            raise ValueError(f"block must be >= 1, got {block}")
        self._ys = ys
        self._zs = zs
        self._ranks = ranks
        self._block = int(block)
        n = ys.size
        starts = np.arange(0, n, self._block)
        self._starts = starts
        if n:
            self._block_min_z = np.minimum.reduceat(zs, starts)
            self._block_min_rank = (
                np.minimum.reduceat(ranks, starts) if ranks is not None else None
            )
        else:
            self._block_min_z = np.empty(0)
            self._block_min_rank = None
        # Per-k cached full-set frontier pairs (see global_pairs).  Lazy
        # and idempotent, so the benign compute-twice race under shared
        # caches is harmless — same contract as the space's lazy orders.
        self._global: "dict[int, tuple[np.ndarray, np.ndarray]]" = {}

    @property
    def size(self) -> int:
        return self._ys.size

    def frontier(
        self, k: int, rank_limit: "int | None" = None
    ) -> "tuple[list[float], list[float]]":
        """Frontier ``(Y, Z)`` pairs over rows with ``rank < rank_limit``.

        Returns exactly the pairs
        :func:`~repro.geometry.sweepline.block_frontier` yields over the
        restricted subsequence (``rank_limit=None`` means all rows):
        the first pair once the size-``k`` heap fills, then one pair per
        strict improvement of the k-th smallest ``z``.  Blocks whose
        summary proves they cannot yield are skipped whole.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        ys, zs, ranks = self._ys, self._zs, self._ranks
        n = ys.size
        out_y: list[float] = []
        out_z: list[float] = []
        if n == 0:
            return out_y, out_z
        check_rank = rank_limit is not None
        if check_rank and ranks is None:
            raise ValueError("rank_limit requires an index built with ranks")
        block = self._block
        min_z = self._block_min_z
        if check_rank:
            active = (self._block_min_rank < rank_limit).nonzero()[0].tolist()
        else:
            active = range(self._starts.size)
        heap: list[float] = []
        cur = math.inf
        filled = False
        replace = heapq.heapreplace
        for b in active:
            lo = b * block
            hi = lo + block
            if hi > n:
                hi = n
            if filled:
                if min_z[b] >= cur:
                    continue
                zb = zs[lo:hi]
                mask = zb < cur
                if check_rank:
                    mask &= ranks[lo:hi] < rank_limit
                for offset in mask.nonzero()[0].tolist():
                    z = float(zb[offset])
                    if z >= cur:
                        # The heap maximum dropped below z since the
                        # block filter — same recheck as block_frontier.
                        continue
                    replace(heap, -z)
                    top = -heap[0]
                    if top < cur:
                        cur = top
                        out_y.append(float(ys[lo + offset]))
                        out_z.append(cur)
                continue
            # Heap still filling: no z-pruning is sound yet.
            if check_rank:
                offsets = (ranks[lo:hi] < rank_limit).nonzero()[0].tolist()
            else:
                offsets = range(hi - lo)
            for offset in offsets:
                i = lo + offset
                z = float(zs[i])
                if not filled:
                    heapq.heappush(heap, -z)
                    if len(heap) == k:
                        filled = True
                        cur = -heap[0]
                        out_y.append(float(ys[i]))
                        out_z.append(cur)
                    continue
                if z < cur:
                    replace(heap, -z)
                    top = -heap[0]
                    if top < cur:
                        cur = top
                        out_y.append(float(ys[i]))
                        out_z.append(cur)
        return out_y, out_z

    def cursor(self, k: int, chunk: int = 1024) -> "FrontierCursor":
        """A :class:`FrontierCursor` over this index's point sequence."""
        return FrontierCursor(self._ys, self._zs, k, chunk=chunk)

    def global_pairs(self, k: int) -> "tuple[np.ndarray, np.ndarray]":
        """Cached full-set frontier pairs for one ``k`` (arrays).

        This is the sweep's global 2-D bound source: the minimum of the
        mapped objective over these pairs equals — float for float — the
        minimum the reference enumeration produces, so computing it once
        per (space, k) replaces an O(n) pass per request.
        """
        pair = self._global.get(k)
        if pair is None:
            fy, fz = self.frontier(k)
            pair = (np.asarray(fy, dtype=float), np.asarray(fz, dtype=float))
            self._global[k] = pair
        return pair


class FrontierCursor:
    """Incremental k-coverage frontier over a *growing* admitted prefix.

    The sweep evaluates frontiers at strictly increasing admission
    prefixes of one fixed point sequence.  Recomputing each frontier
    from all admitted rows costs ``O(n)`` per evaluation; the cursor
    instead exploits a monotonicity of the k-heap scan: the running
    k-th-smallest-``z`` envelope of a *superset* is pointwise at or
    below that of a subset, so a row that failed ``z < cur`` once can
    never pass it again and is discarded forever.  Each evaluation then
    touches only the prior evaluation's *survivors* (rows that entered
    the heap — a near-frontier-sized set) plus the rows newly admitted
    since, which makes the total work per request ``O(n)`` across all
    evaluations instead of ``O(n)`` per evaluation.

    The yielded ``(Y, Z)`` pairs are exactly — float for float — what
    :func:`~repro.geometry.sweepline.block_frontier` produces over the
    admitted subsequence in the same order: discarded rows never touch
    the heap there either, and the remaining rows are processed in the
    identical relative order with the identical float comparisons.

    Parameters
    ----------
    ys, zs:
        The full point sequence in enumeration (``y``-sorted) order.
    k:
        Coverage requirement; fixed for the cursor's lifetime.
    chunk:
        Rows filtered per vectorized step of the scan.
    """

    def __init__(self, ys: np.ndarray, zs: np.ndarray, k: int, chunk: int = 1024):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if chunk < 1:
            raise ValueError(f"chunk must be >= 1, got {chunk}")
        self._ys = ys
        self._zs = zs
        self._k = k
        self._chunk = int(chunk)
        self._survivors = np.empty(0, dtype=np.intp)

    def frontier(
        self, new_positions: np.ndarray
    ) -> "tuple[list[float], list[float]]":
        """Frontier pairs after admitting ``new_positions`` (sorted).

        ``new_positions`` are enumeration-order positions of the rows
        admitted since the previous call, ascending and disjoint from
        everything admitted before.
        """
        merged = np.concatenate([self._survivors, new_positions])
        merged.sort(kind="stable")
        ys, zs = self._ys, self._zs
        k = self._k
        out_y: list[float] = []
        out_z: list[float] = []
        survivors: list[int] = []
        keep = survivors.append
        heap: list[float] = []
        cur = math.inf
        i = 0
        m = merged.size
        while i < m and len(heap) < k:
            pos = int(merged[i])
            z = float(zs[pos])
            keep(pos)
            heapq.heappush(heap, -z)
            if len(heap) == k:
                cur = -heap[0]
                out_y.append(float(ys[pos]))
                out_z.append(cur)
            i += 1
        replace = heapq.heapreplace
        chunk = self._chunk
        while i < m:
            part = merged[i : i + chunk]
            zc = zs[part]
            for offset in (zc < cur).nonzero()[0].tolist():
                z = float(zc[offset])
                if z >= cur:
                    # cur dropped below z after the chunk filter — the
                    # row is dead now and, by monotonicity, forever.
                    continue
                pos = int(part[offset])
                keep(pos)
                replace(heap, -z)
                top = -heap[0]
                if top < cur:
                    cur = top
                    out_y.append(float(ys[pos]))
                    out_z.append(cur)
            i += chunk
        self._survivors = np.asarray(survivors, dtype=np.intp)
        return out_y, out_z
