"""Axis-parallel 3-D boxes (hyper-rectangles).

Deployment requests are boxes anchored at the origin in the unified space
(§4.1); the R-tree baseline additionally uses general boxes as minimum
bounding boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.geometry.point import Point3


@dataclass(frozen=True)
class Box3:
    """A closed axis-parallel box ``[lo, hi]`` in 3-D."""

    lo: Point3
    hi: Point3

    def __post_init__(self):
        if not self.lo.dominates(self.hi):
            raise ValueError(f"box lo {self.lo} must be <= hi {self.hi} componentwise")

    @classmethod
    def from_origin(cls, hi: Point3) -> "Box3":
        """The request box ``[0, hi]`` of §4.1."""
        return cls(Point3(0.0, 0.0, 0.0), hi)

    @classmethod
    def bounding(cls, points: Iterable[Point3]) -> "Box3":
        """Minimum bounding box of a non-empty point set."""
        arr = np.array([[p.x, p.y, p.z] for p in points], dtype=float)
        if arr.size == 0:
            raise ValueError("cannot bound an empty point set")
        lo = arr.min(axis=0)
        hi = arr.max(axis=0)
        return cls(Point3(*lo), Point3(*hi))

    def contains(self, point: Point3) -> bool:
        """True iff ``point`` lies inside the closed box."""
        return self.lo.dominates(point) and point.dominates(self.hi)

    def intersects(self, other: "Box3") -> bool:
        """True iff the closed boxes share at least one point."""
        return (
            self.lo.x <= other.hi.x
            and other.lo.x <= self.hi.x
            and self.lo.y <= other.hi.y
            and other.lo.y <= self.hi.y
            and self.lo.z <= other.hi.z
            and other.lo.z <= self.hi.z
        )

    def union(self, other: "Box3") -> "Box3":
        """Smallest box containing both boxes."""
        return Box3(
            Point3(
                min(self.lo.x, other.lo.x),
                min(self.lo.y, other.lo.y),
                min(self.lo.z, other.lo.z),
            ),
            Point3(
                max(self.hi.x, other.hi.x),
                max(self.hi.y, other.hi.y),
                max(self.hi.z, other.hi.z),
            ),
        )

    def volume(self) -> float:
        """Product of side lengths."""
        return (
            (self.hi.x - self.lo.x)
            * (self.hi.y - self.lo.y)
            * (self.hi.z - self.lo.z)
        )

    def margin(self) -> float:
        """Sum of side lengths (used by R-tree split heuristics)."""
        return (
            (self.hi.x - self.lo.x)
            + (self.hi.y - self.lo.y)
            + (self.hi.z - self.lo.z)
        )

    def enlargement(self, other: "Box3") -> float:
        """Volume growth if ``other`` were merged into this box."""
        return self.union(other).volume() - self.volume()

    def top_right(self) -> Point3:
        """The ``hi`` corner — what Baseline3 returns as alternative params."""
        return self.hi
