"""3-D points in the unified smaller-is-better parameter space."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

DIMENSION_NAMES = ("cost", "quality", "latency")


@dataclass(frozen=True)
class Point3:
    """An immutable point in the unified 3-D space.

    By the paper's §4.1 convention all coordinates are normalized to
    ``[0, 1]`` and *smaller is better*; quality has already been inverted
    (``1 − quality``) by the caller.
    """

    x: float
    y: float
    z: float

    def __post_init__(self):
        for name, value in zip("xyz", (self.x, self.y, self.z)):
            if not np.isfinite(value):
                raise ValueError(f"coordinate {name} must be finite, got {value}")

    def as_array(self) -> np.ndarray:
        """Coordinates as a float ndarray of shape (3,)."""
        return np.array([self.x, self.y, self.z], dtype=float)

    def dominates(self, other: "Point3") -> bool:
        """True iff ``self <= other`` componentwise (weak dominance)."""
        return self.x <= other.x and self.y <= other.y and self.z <= other.z

    def distance_to(self, other: "Point3") -> float:
        """Euclidean (ℓ2) distance — the ADPaR objective (Equation 3)."""
        return float(
            np.sqrt(
                (self.x - other.x) ** 2
                + (self.y - other.y) ** 2
                + (self.z - other.z) ** 2
            )
        )

    def clipped_relaxation_from(self, origin: "Point3") -> "Point3":
        """Per-dimension relaxation needed for ``origin`` to cover ``self``.

        This is the paper's Step-1 transform (Table 3): coordinates already
        inside the request box map to 0.
        """
        return Point3(
            max(self.x - origin.x, 0.0),
            max(self.y - origin.y, 0.0),
            max(self.z - origin.z, 0.0),
        )

    def __iter__(self):
        yield self.x
        yield self.y
        yield self.z


def points_to_array(points: "list[Point3]") -> np.ndarray:
    """Stack points into an ``(n, 3)`` float array."""
    if not points:
        return np.empty((0, 3), dtype=float)
    return np.array([[p.x, p.y, p.z] for p in points], dtype=float)
