"""Figure 16: pay-off objective and empirical approximation factor.

Same setup as Figure 15 with the pay-off objective.  The paper annotates
each point with BatchStrat's empirical approximation factor, which stays
above 0.9 — far better than the theoretical 1/2 guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.engine import RecommendationEngine
from repro.experiments.fig15_throughput import (
    DEFAULTS,
    M_SWEEP,
    SWEEP_VALUES,
    _BASE_SCENARIO,
)
from repro.experiments.runner import ExperimentResult
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_series
from repro.workloads import default_scenario_registry


def _payoffs(
    n_strategies: int, m: int, k: int, availability: float, rng: np.random.Generator
) -> tuple[float, float, float]:
    """(BruteForce, BatchStrat, BaselineG) pay-off values, one draw."""
    scenario = default_scenario_registry().create(
        _BASE_SCENARIO,
        n_strategies=n_strategies,
        m_requests=m,
        k=min(k, n_strategies),
        availability=availability,
    )
    rng_s, rng_r = spawn_rngs(rng, 2)
    ensemble = scenario.ensemble.build(rng_s)
    requests = scenario.requests.build(rng_r)
    # One engine, three backends over the same batch (cf. fig15).
    engine = RecommendationEngine(ensemble, **scenario.engine.engine_kwargs())
    brute = engine.plan(requests, "payoff", planner="batch-bruteforce")
    batch = engine.plan(requests, "payoff")
    greedy = engine.plan(requests, "payoff", planner="baseline-greedy")
    return brute.objective_value, batch.objective_value, greedy.objective_value


def run_fig16(repetitions: int = 5, seed: int = 43) -> ExperimentResult:
    """Regenerate the three pay-off panels with approximation factors."""
    result = ExperimentResult(
        name="Figure 16: Objective Function and Approximation Factor for Payoff",
        description=(
            f"defaults |S|={DEFAULTS['n_strategies']}, m={DEFAULTS['m']}, "
            f"k={DEFAULTS['k']}, W={DEFAULTS['availability']}; avg of "
            f"{repetitions} runs."
        ),
    )
    min_factor = 1.0
    for parameter, values, label in (
        ("k", SWEEP_VALUES, "k"),
        ("m", M_SWEEP, "m"),
        ("n_strategies", SWEEP_VALUES, "|S|"),
    ):
        brute_means, batch_means, greedy_means, factors = [], [], [], []
        for i, value in enumerate(values):
            config = dict(DEFAULTS)
            config[parameter] = value
            rngs = spawn_rngs(seed + 31 * i, repetitions)
            samples = np.array(
                [
                    _payoffs(
                        config["n_strategies"],
                        config["m"],
                        config["k"],
                        config["availability"],
                        rng,
                    )
                    for rng in rngs
                ]
            )
            run_factors = [
                s[1] / s[0] if s[0] > 0 else 1.0 for s in samples
            ]
            brute_means.append(float(samples[:, 0].mean()))
            batch_means.append(float(samples[:, 1].mean()))
            greedy_means.append(float(samples[:, 2].mean()))
            factors.append(float(np.mean(run_factors)))
            min_factor = min(min_factor, min(run_factors))
        result.data[parameter] = {
            "x": list(values),
            "BruteForce": brute_means,
            "BatchStrat": batch_means,
            "BaselineG": greedy_means,
            "approx_factor": factors,
        }
        result.add_table(
            format_series(
                label,
                list(values),
                {
                    "BruteForce": brute_means,
                    "BatchStrat": batch_means,
                    "BaselineG": greedy_means,
                    "approx factor": factors,
                },
                title=f"Panel: varying {label}",
                precision=3,
            )
        )
    result.data["min_factor"] = min_factor
    result.add_note(
        f"Worst observed approximation factor {min_factor:.3f} — always above "
        "the 1/2 guarantee; the paper reports factors above 0.9 most of the time."
    )
    return result
