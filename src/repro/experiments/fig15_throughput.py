"""Figure 15: throughput objective — BruteForce vs BatchStrat vs BaselineG.

Defaults k=10, m=5, |S|=30, W=0.5 ("because brute force does not scale
beyond that"); panels sweep k, m and |S| over {10, 20, 30}.  Expected:
BatchStrat exactly matches BruteForce (Theorem 2) and BaselineG never
exceeds it.

A fourth, beyond-the-paper panel measures *streaming* throughput at the
same |S|=30 scale: arrival streams admitted per-request through
``EngineSession.submit`` versus in micro-bursts through the vectorized
``EngineSession.submit_many``, decisions verified identical.
"""

from __future__ import annotations

import time

import numpy as np

from repro.api import EngineService
from repro.engine import RecommendationEngine
from repro.experiments.runner import ExperimentResult
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_series
from repro.workloads import default_scenario_registry

#: The registry family the fig15/fig16 sweeps derive from — the
#: brute-force-tractable batch setup (max-case aggregation, strict
#: workforce) lives in the catalog, not here.
_BASE_SCENARIO = "paper-batch-small"
_PAPER = default_scenario_registry().get(_BASE_SCENARIO)
DEFAULTS = {
    "n_strategies": _PAPER.ensemble.n_strategies,
    "m": _PAPER.requests.m_requests,
    "k": _PAPER.requests.k,
    "availability": _PAPER.engine.availability,
}
SWEEP_VALUES = (10, 20, 30)
#: m is capped below the paper's 30 because exhaustive enumeration over 30
#: requests (2^30 subsets) is not tractable on any testbed; the shape
#: (BatchStrat == BruteForce >= BaselineG) is unaffected.
M_SWEEP = (5, 10, 15)
#: Arrival-stream lengths for the streaming-throughput panel.
STREAM_SWEEP = (200, 400, 800)


def _objectives(
    n_strategies: int,
    m: int,
    k: int,
    availability: float,
    objective: str,
    rng: np.random.Generator,
    service: "EngineService | None" = None,
) -> tuple[float, float, float]:
    """(BruteForce, BatchStrat, BaselineG) objective values, one draw."""
    # max-case aggregation (deploy one of the k recommended strategies,
    # Figure 3c) + strict workforce mode: the combination that reproduces
    # the paper's objective magnitudes at |S|=30 (see EXPERIMENTS.md) —
    # carried by the paper-batch-small scenario family.
    scenario = default_scenario_registry().create(
        _BASE_SCENARIO,
        n_strategies=n_strategies,
        m_requests=m,
        k=min(k, n_strategies),
        availability=availability,
    )
    rng_s, rng_r = spawn_rngs(rng, 2)
    ensemble = scenario.ensemble.build(rng_s)
    requests = scenario.requests.build(rng_r)
    # One pooled engine, three planner backends: the workforce aggregates
    # are computed once and shared through the service cache.
    if service is None:
        service = EngineService()
    engine = service.engine_for(ensemble, scenario.engine)
    brute = engine.plan(requests, objective, planner="batch-bruteforce")
    batch = engine.plan(requests, objective)
    greedy = engine.plan(requests, objective, planner="baseline-greedy")
    return brute.objective_value, batch.objective_value, greedy.objective_value


def sweep_objective(
    parameter: str,
    values: tuple,
    objective: str,
    repetitions: int,
    seed: int,
    service: "EngineService | None" = None,
) -> dict:
    """Sweep one parameter; returns mean objective per algorithm."""
    if service is None:
        service = EngineService()
    out = {"x": list(values), "BruteForce": [], "BatchStrat": [], "BaselineG": []}
    for i, value in enumerate(values):
        config = dict(DEFAULTS)
        config[parameter] = value
        rngs = spawn_rngs(seed + 31 * i, repetitions)
        samples = np.array(
            [
                _objectives(
                    config["n_strategies"],
                    config["m"],
                    config["k"],
                    config["availability"],
                    objective,
                    rng,
                    service=service,
                )
                for rng in rngs
            ]
        )
        means = samples.mean(axis=0)
        out["BruteForce"].append(float(means[0]))
        out["BatchStrat"].append(float(means[1]))
        out["BaselineG"].append(float(means[2]))
    return out


def stream_throughput_panel(
    arrivals_sweep: "tuple[int, ...]" = STREAM_SWEEP, seed: int = 41
) -> dict:
    """Streaming admission throughput: scalar submit loop vs submit_many.

    Fresh engines (cold caches) on both sides; decisions are verified
    identical per stream before any timing is reported.
    """
    out = {
        "arrivals": list(arrivals_sweep),
        "submit_loop_s": [],
        "submit_many_s": [],
        "speedup": [],
        "decisions_identical": True,
    }
    scenario = default_scenario_registry().create(
        "steady-stream",
        n_strategies=DEFAULTS["n_strategies"],
        k=DEFAULTS["k"],
    )
    rng_s, rng_r = spawn_rngs(seed, 2)
    ensemble = scenario.ensemble.build(rng_s)
    for arrivals in arrivals_sweep:
        stream = scenario.requests.with_(
            m_requests=arrivals, prefix=f"s{arrivals}-"
        ).build(rng_r)
        scalar_session = RecommendationEngine(
            ensemble, DEFAULTS["availability"]
        ).open_session()
        start = time.perf_counter()
        scalar = [scalar_session.submit(request) for request in stream]
        scalar_s = time.perf_counter() - start
        batch_session = RecommendationEngine(
            ensemble, DEFAULTS["availability"]
        ).open_session()
        start = time.perf_counter()
        batched = batch_session.submit_many(stream)
        batch_s = time.perf_counter() - start
        out["decisions_identical"] = out["decisions_identical"] and [
            d.comparison_key() for d in scalar
        ] == [d.comparison_key() for d in batched]
        out["submit_loop_s"].append(scalar_s)
        out["submit_many_s"].append(batch_s)
        out["speedup"].append(scalar_s / max(batch_s, 1e-9))
    return out


def run_fig15(repetitions: int = 5, seed: int = 41) -> ExperimentResult:
    """Regenerate the three throughput panels."""
    result = ExperimentResult(
        name="Figure 15: Objective Function for Throughput",
        description=(
            f"defaults |S|={DEFAULTS['n_strategies']}, m={DEFAULTS['m']}, "
            f"k={DEFAULTS['k']}, W={DEFAULTS['availability']}; avg of "
            f"{repetitions} runs. m sweep capped at {max(M_SWEEP)} (see note)."
        ),
    )
    exact_everywhere = True
    # One service for every panel: pooled engines over one shared cache.
    service = EngineService()
    for parameter, values, label in (
        ("k", SWEEP_VALUES, "k"),
        ("m", M_SWEEP, "m"),
        ("n_strategies", SWEEP_VALUES, "|S|"),
    ):
        data = sweep_objective(
            parameter, values, "throughput", repetitions, seed, service=service
        )
        result.data[parameter] = data
        result.add_table(
            format_series(
                label,
                data["x"],
                {
                    "BruteForce": data["BruteForce"],
                    "BatchStrat": data["BatchStrat"],
                    "BaselineG": data["BaselineG"],
                },
                title=f"Panel: varying {label}",
                precision=3,
            )
        )
        exact_everywhere = exact_everywhere and np.allclose(
            data["BruteForce"], data["BatchStrat"], atol=1e-9
        )
    result.data["exact_everywhere"] = exact_everywhere
    result.add_note(
        f"BatchStrat matches BruteForce at every point: {exact_everywhere} "
        "(Theorem 2: the greedy is exact for throughput)."
    )
    result.add_note(
        "Brute force over m=30 requests (2^30 subsets) is intractable for "
        "any implementation; the m panel sweeps 5/10/15 instead."
    )
    streaming = stream_throughput_panel(seed=seed)
    result.data["streaming"] = streaming
    result.add_table(
        format_series(
            "arrivals",
            streaming["arrivals"],
            {
                "submit loop (req/s)": [
                    a / max(s, 1e-9)
                    for a, s in zip(streaming["arrivals"], streaming["submit_loop_s"])
                ],
                "submit_many (req/s)": [
                    a / max(s, 1e-9)
                    for a, s in zip(streaming["arrivals"], streaming["submit_many_s"])
                ],
                "speedup": streaming["speedup"],
            },
            title="Panel: streaming admission throughput (|S|=30)",
            precision=1,
        )
    )
    result.add_note(
        "Streaming panel (beyond the paper): micro-batched submit_many vs "
        "the per-request submit loop, decisions identical: "
        f"{streaming['decisions_identical']}."
    )
    return result
