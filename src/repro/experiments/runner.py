"""Shared experiment plumbing: result containers and repetition helpers."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.utils.rng import spawn_rngs


@dataclass
class ExperimentResult:
    """One regenerated table/figure."""

    name: str
    description: str
    tables: list[str] = field(default_factory=list)
    data: dict = field(default_factory=dict)
    notes: list[str] = field(default_factory=list)

    def add_table(self, rendered: str) -> None:
        self.tables.append(rendered)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def render(self) -> str:
        """Human-readable report block."""
        parts = [f"=== {self.name} ===", self.description, ""]
        for table in self.tables:
            parts.append(table)
            parts.append("")
        if self.notes:
            parts.append("Notes:")
            parts.extend(f"  - {note}" for note in self.notes)
        return "\n".join(parts).rstrip() + "\n"


def averaged_over_seeds(
    fn: Callable[[np.random.Generator], float],
    seed: int,
    repetitions: int,
) -> tuple[float, float]:
    """Run ``fn`` with independent generators; return (mean, stderr).

    This is the paper's "average of 10 runs is presented" protocol.
    """
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    rngs = spawn_rngs(seed, repetitions)
    values = np.array([float(fn(rng)) for rng in rngs])
    stderr = float(values.std(ddof=1) / np.sqrt(len(values))) if len(values) > 1 else 0.0
    return float(values.mean()), stderr


def sweep(
    x_values: Sequence,
    fn: Callable[[object, np.random.Generator], float],
    seed: int,
    repetitions: int,
) -> tuple[list[float], list[float]]:
    """Evaluate ``fn`` at each x value, averaged over seeds.

    Returns parallel (means, stderrs) lists.
    """
    means, errs = [], []
    for i, x in enumerate(x_values):
        mean, err = averaged_over_seeds(
            lambda rng, x=x: fn(x, rng), seed + 1000 * i, repetitions
        )
        means.append(mean)
        errs.append(err)
    return means, errs
