"""Figure 12: deployment parameters vs worker availability (4 panels).

Each panel plots quality, cost and latency against availability for one
(task type, strategy) pair.  The paper's qualitative shape: quality and
cost increase with availability, latency decreases.  We tabulate the
simulated series the way EXPERIMENTS.md records figures.
"""

from __future__ import annotations

import numpy as np

from repro.execution.engine import ExecutionEngine
from repro.execution.tasks import make_creation_tasks, make_translation_tasks
from repro.experiments.runner import ExperimentResult
from repro.experiments.table6_model_fits import AVAILABILITY_LADDER, PAIRS
from repro.platform.worker import generate_workers
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_series


def run_fig12(seed: int = 9, samples_per_level: int = 3) -> ExperimentResult:
    """Regenerate the four panels as availability-indexed series."""
    result = ExperimentResult(
        name="Figure 12: Deployment Parameters vs Worker Availability",
        description="Mean observed quality/cost/latency per availability level.",
    )
    engine = ExecutionEngine()
    monotone_ok = True
    for i, (task_type, strategy_name) in enumerate(PAIRS):
        rng = ensure_rng(seed + i)
        workers = generate_workers(120, seed=rng)
        make_tasks = (
            make_translation_tasks if task_type == "translation" else make_creation_tasks
        )
        tasks = iter(make_tasks(samples_per_level * len(AVAILABILITY_LADDER), seed=rng))
        quality, cost, latency = [], [], []
        for availability in AVAILABILITY_LADDER:
            outcomes = [
                engine.run(
                    strategy_name, next(tasks), availability,
                    workers=workers, seed=rng,
                )
                for _ in range(samples_per_level)
            ]
            quality.append(float(np.mean([o.quality for o in outcomes])))
            cost.append(float(np.mean([o.cost for o in outcomes])))
            latency.append(float(np.mean([o.latency for o in outcomes])))
        panel = f"{task_type} {strategy_name}"
        result.data[panel] = {
            "availability": list(AVAILABILITY_LADDER),
            "quality": quality,
            "cost": cost,
            "latency": latency,
        }
        result.add_table(
            format_series(
                "availability",
                list(AVAILABILITY_LADDER),
                {"Quality": quality, "Cost": cost, "Latency": latency},
                title=f"Panel: {panel}",
                precision=3,
            )
        )
        quality_up = quality[-1] >= quality[0]
        cost_up = cost[-1] >= cost[0]
        latency_down = latency[-1] <= latency[0]
        monotone_ok = monotone_ok and quality_up and cost_up and latency_down
    result.data["monotone_ok"] = monotone_ok
    result.add_note(
        "Quality/cost rise and latency falls with availability in every "
        f"panel: {monotone_ok} (paper: yes)."
    )
    return result
