"""Figure 11: worker availability estimation across deployment windows.

The paper deploys each task in three windows and finds availability (a)
is estimable, (b) varies over time, peaking in Window 2 (Mon–Thu), for
both SEQ-IND-CRO ("Seq-IC") and SIM-COL-CRO ("Sim-CC").  We reproduce
the protocol against the simulated platform: repeated deployments per
window, mean availability with standard error bars.
"""

from __future__ import annotations

from repro.experiments.runner import ExperimentResult
from repro.platform.history import AvailabilityRecord, HistoryLog
from repro.platform.pool import WorkerPool
from repro.platform.simulator import PAPER_WINDOWS, PlatformSimulator
from repro.platform.worker import generate_workers
from repro.stats.descriptive import standard_error, summarize
from repro.utils.tables import format_table

STRATEGIES = ("SEQ-IND-CRO", "SIM-COL-CRO")


def run_fig11(
    pool_size: int = 400,
    repetitions: int = 5,
    task_type: str = "translation",
    seed: int = 23,
) -> ExperimentResult:
    """Deploy per window × strategy, observe availability, log history."""
    pool = WorkerPool(generate_workers(pool_size, seed=seed))
    simulator = PlatformSimulator(pool, seed=seed + 1)
    history = HistoryLog()

    result = ExperimentResult(
        name="Figure 11: Worker Availability Estimation",
        description=(
            f"{repetitions} simulated deployments per window x strategy "
            f"({task_type}); mean availability with standard error."
        ),
    )
    rows = []
    series: dict = {name: [] for name in STRATEGIES}
    for window in PAPER_WINDOWS:
        for strategy_name in STRATEGIES:
            samples = []
            for _ in range(repetitions):
                obs = simulator.run_window(
                    window, task_type, strategy_name=strategy_name
                )
                samples.append(obs.availability)
                history.add(
                    AvailabilityRecord(
                        window_name=window.name,
                        task_type=task_type,
                        strategy_name=strategy_name,
                        availability=obs.availability,
                    )
                )
            summary = summarize(samples)
            series[strategy_name].append(summary.mean)
            rows.append(
                [window.name, strategy_name, summary.mean, standard_error(samples)]
            )

    result.add_table(
        format_table(
            ["window", "strategy", "mean availability", "stderr"],
            rows,
            title="Availability per deployment window",
        )
    )
    result.data["series"] = series
    result.data["history"] = history

    pooled = [
        (series[STRATEGIES[0]][w] + series[STRATEGIES[1]][w]) / 2.0
        for w in range(len(PAPER_WINDOWS))
    ]
    window2_peak = pooled[1] >= pooled[0] and pooled[1] >= pooled[2]
    result.data["pooled_means"] = pooled
    result.data["window2_peak"] = window2_peak
    result.add_note(
        "Window 2 (Mon-Thu) shows the highest pooled availability: "
        f"{window2_peak} (paper: yes; per-strategy estimates carry the "
        "0.1-granularity noise of 10-worker HITs, like the paper's error bars)."
    )
    distribution = history.estimate_distribution(task_type=task_type, bins=8)
    result.data["distribution"] = distribution
    result.add_note(
        f"Estimated availability pdf has E[W] = {distribution.expectation():.3f} "
        "- this expectation is what StratRec plans with."
    )
    return result
