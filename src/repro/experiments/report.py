"""Render a full reproduction report (all tables and figures).

``python -m repro.experiments.report`` regenerates every experiment at
reduced repetition counts and prints the combined report — the quickest
way to eyeball the whole reproduction.
"""

from __future__ import annotations

from typing import Callable

from repro.experiments.fig11_availability import run_fig11
from repro.experiments.fig12_linearity import run_fig12
from repro.experiments.fig13_effectiveness import run_fig13
from repro.experiments.fig14_satisfied import run_fig14
from repro.experiments.fig15_throughput import run_fig15
from repro.experiments.fig16_payoff import run_fig16
from repro.experiments.fig17_adpar_quality import run_fig17
from repro.experiments.fig18_scalability import run_fig18_adpar, run_fig18_batch
from repro.experiments.running_example import run_running_example
from repro.experiments.table6_model_fits import run_table6

ALL_EXPERIMENTS: "list[tuple[str, Callable]]" = [
    ("running-example", run_running_example),
    ("fig11", run_fig11),
    ("table6", run_table6),
    ("fig12", run_fig12),
    ("fig13", run_fig13),
    ("fig14", lambda: run_fig14(quick=True)),
    ("fig15", run_fig15),
    ("fig16", run_fig16),
    ("fig17", lambda: run_fig17(quick=True)),
    ("fig18-batch", run_fig18_batch),
    ("fig18-adpar", lambda: run_fig18_adpar(quick=True)),
]


def full_report() -> str:
    """Run everything and return the combined report text."""
    blocks = []
    for _, fn in ALL_EXPERIMENTS:
        blocks.append(fn().render())
    return "\n".join(blocks)


if __name__ == "__main__":
    print(full_report())
