"""Figure 17: ADPaR solution quality (Euclidean distance d to d').

Four panels: varying |S| and k, with and without the exponential brute
force (ADPaRB).  Defaults |S|=200, k=5 (|S|=20 when ADPaRB runs).
Expected shapes: ADPaR-Exact == ADPaRB; both Baseline2 (one-dimension
refinement) and Baseline3 (R-tree scan) are significantly worse with
Baseline3 worst; distance falls with |S| and grows with k.

The paper's y-axes show values up to 1e8 — impossible for ℓ2 distances of
points normalized to [0, 1] (max √3), so those units appear unnormalized;
we report normalized distances, where the ordering and trends are what
carry over.
"""

from __future__ import annotations

import numpy as np

from repro.core.strategy import StrategyEnsemble
from repro.engine import EngineCache, RecommendationEngine
from repro.experiments.runner import ExperimentResult
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_series
from repro.workloads import default_scenario_registry
from repro.workloads.generators import hard_request_for

#: The ADPaR quality sweeps derive from the paper's catalog family.
_BASE_SCENARIO = "paper-adpar"

S_SWEEP = (200, 400, 600, 800, 1000)
S_SWEEP_BF = (10, 20, 30)
K_SWEEP = (10, 20, 30, 40, 50)
K_SWEEP_BF = (5, 10, 15)


def _distances(
    n: int,
    k: int,
    rng: np.random.Generator,
    with_brute_force: bool,
    cache: EngineCache,
) -> tuple:
    """(exact, baseline2, baseline3[, brute]) distances for one draw.

    All solvers are served by the engine's solver registry over the
    figure-wide ``cache``, so each backend is constructed once per
    ensemble (no per-request R-tree rebuilds) and every backend that
    touches an ensemble — within a draw or across repeated draws —
    shares the one cached :class:`RelaxationSpace` for it.
    """
    scenario = default_scenario_registry().create(_BASE_SCENARIO, n_strategies=n)
    rng_pts, rng_req = spawn_rngs(rng, 2)
    points = scenario.ensemble.build_points(rng_pts)
    request = hard_request_for(points, rng_req, tightness=scenario.tightness)
    ensemble = StrategyEnsemble.from_params(points)
    engine = RecommendationEngine(ensemble, availability=1.0, cache=cache)
    exact = engine.recommend_alternative(request, k).distance
    b2 = engine.recommend_alternative(request, k, solver="onedim").distance
    b3 = engine.recommend_alternative(request, k, solver="rtree").distance
    if with_brute_force:
        brute = engine.recommend_alternative(
            request, k, solver="bruteforce"
        ).distance
        return exact, b2, b3, brute
    return exact, b2, b3


def _panel(
    x_values: tuple,
    fixed_k: "int | None",
    fixed_n: "int | None",
    with_brute_force: bool,
    repetitions: int,
    seed: int,
    cache: EngineCache,
) -> dict:
    names = ["ADPaR-Exact", "Baseline2", "Baseline3"] + (
        ["ADPaRB"] if with_brute_force else []
    )
    data: dict = {"x": list(x_values), **{name: [] for name in names}}
    for i, x in enumerate(x_values):
        n = x if fixed_n is None else fixed_n
        k = x if fixed_k is None else fixed_k
        rngs = spawn_rngs(seed + 13 * i, repetitions)
        samples = np.array(
            [_distances(n, min(k, n), rng, with_brute_force, cache) for rng in rngs]
        )
        means = samples.mean(axis=0)
        for j, name in enumerate(names):
            data[name].append(float(means[j]))
    return data


def run_fig17(
    repetitions: int = 5, seed: int = 53, quick: bool = False
) -> ExperimentResult:
    """Regenerate all four distance panels."""
    reps = max(2, repetitions // 2) if quick else repetitions
    result = ExperimentResult(
        name="Figure 17: Quality Experiments for ADPaR",
        description=(
            "Euclidean distance between d and d' (smaller is better); "
            f"avg of {reps} runs. Defaults |S|=200, k=5 "
            "(|S|=20, k=5 for brute-force panels)."
        ),
    )
    # One cache for all four panels: every engine threads its relaxation
    # spaces (and solver instances) through it, so a per-ensemble space
    # is built exactly once figure-wide.
    cache = EngineCache()
    panels = [
        ("varying |S| (no brute force), k=5", "|S|",
         _panel(S_SWEEP if not quick else S_SWEEP[:3], 5, None, False, reps, seed, cache)),
        ("varying |S| (with brute force), k=5", "|S|",
         _panel(S_SWEEP_BF, 5, None, True, reps, seed + 1, cache)),
        ("varying k (no brute force), |S|=200", "k",
         _panel(K_SWEEP if not quick else K_SWEEP[:3], None, 200, False, reps, seed + 2, cache)),
        ("varying k (with brute force), |S|=20", "k",
         _panel(K_SWEEP_BF, None, 20, True, reps, seed + 3, cache)),
    ]
    exact_matches_brute = True
    exact_never_worse = True
    for title, label, data in panels:
        result.data[title] = data
        series = {name: values for name, values in data.items() if name != "x"}
        result.add_table(
            format_series(label, data["x"], series, title=f"Panel: {title}")
        )
        if "ADPaRB" in data:
            exact_matches_brute = exact_matches_brute and np.allclose(
                data["ADPaR-Exact"], data["ADPaRB"], atol=1e-9
            )
        exact_never_worse = exact_never_worse and all(
            e <= b2 + 1e-9 and e <= b3 + 1e-9
            for e, b2, b3 in zip(data["ADPaR-Exact"], data["Baseline2"], data["Baseline3"])
        )
    result.data["exact_matches_brute"] = exact_matches_brute
    result.data["exact_never_worse"] = exact_never_worse
    result.add_note(
        f"ADPaR-Exact equals ADPaRB everywhere: {exact_matches_brute} "
        "(Theorem 4: exactness)."
    )
    result.add_note(
        f"ADPaR-Exact never exceeds either baseline's distance: {exact_never_worse}."
    )
    result.add_note(
        "Distances are in normalized [0,1] parameter space; the paper's 1e3-1e8 "
        "y-axis units are not reproducible from normalized parameters (see module docstring)."
    )
    return result
