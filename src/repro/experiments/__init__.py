"""Experiment harness: one module per table/figure of the paper's §5.

Every module exposes a ``run_*`` function returning an
:class:`~repro.experiments.runner.ExperimentResult` whose ``render()``
prints the same rows/series the paper reports.  The benchmarks under
``benchmarks/`` wrap these functions; EXPERIMENTS.md records
paper-vs-measured for each.
"""

from repro.experiments.runner import ExperimentResult
from repro.experiments.running_example import run_running_example
from repro.experiments.fig11_availability import run_fig11
from repro.experiments.table6_model_fits import run_table6
from repro.experiments.fig12_linearity import run_fig12
from repro.experiments.fig13_effectiveness import run_fig13
from repro.experiments.fig14_satisfied import run_fig14
from repro.experiments.fig15_throughput import run_fig15
from repro.experiments.fig16_payoff import run_fig16
from repro.experiments.fig17_adpar_quality import run_fig17
from repro.experiments.fig18_scalability import run_fig18_batch, run_fig18_adpar

__all__ = [
    "ExperimentResult",
    "run_running_example",
    "run_fig11",
    "run_table6",
    "run_fig12",
    "run_fig13",
    "run_fig14",
    "run_fig15",
    "run_fig16",
    "run_fig17",
    "run_fig18_batch",
    "run_fig18_adpar",
]
