"""The paper's running example (Tables 1–5, Example 2.1).

Reproduces: Table 1's requests/strategies, the satisfaction of d3 by
{s2, s3, s4}, ADPaR's answer for d1 — (0.4, 0.5, 0.28) with {s1, s2, s3}
— and the d2 case where the paper's stated answer is internally
inconsistent (see DESIGN.md §5): our exact optimum is
(0.75, 0.58, 0.28) covering {s2, s3, s4} at distance ≈ 0.383, tighter
than the distance 0.424 implied by the paper's (0.75, 0.5, 0.28).
Tables 2–4's intermediate structures are emitted from the solver trace.
"""

from __future__ import annotations

from repro.core.adpar import ADPaRExact
from repro.core.params import TriParams
from repro.core.request import make_requests
from repro.core.strategy import StrategyEnsemble
from repro.experiments.runner import ExperimentResult
from repro.utils.tables import format_table

#: Table 1 rows (quality, cost, latency).
TABLE1_REQUESTS = [(0.4, 0.17, 0.28), (0.8, 0.2, 0.28), (0.7, 0.83, 0.28)]
TABLE1_STRATEGIES = [
    (0.5, 0.25, 0.28),
    (0.75, 0.33, 0.28),
    (0.8, 0.5, 0.14),
    (0.88, 0.58, 0.14),
]


def build_example() -> tuple[StrategyEnsemble, list]:
    """The Example 2.1 universe: 4 strategies, 3 requests, k = 3."""
    ensemble = StrategyEnsemble.from_params(
        [TriParams(*row) for row in TABLE1_STRATEGIES]
    )
    requests = make_requests(TABLE1_REQUESTS, k=3)
    return ensemble, requests


def run_running_example() -> ExperimentResult:
    """Regenerate Tables 1–5 and the worked ADPaR answers."""
    ensemble, requests = build_example()
    result = ExperimentResult(
        name="Running example (Tables 1-5)",
        description="Example 2.1: 3 deployment requests, 4 strategies, k=3.",
    )

    rows = [
        [req.request_id, *req.params.as_tuple()] for req in requests
    ] + [
        [name, *params] for name, params in zip(ensemble.names, TABLE1_STRATEGIES)
    ]
    result.add_table(
        format_table(
            ["", "Quality", "Cost", "Latency"], rows, title="Table 1", precision=2
        )
    )

    strategies = [TriParams(*row) for row in TABLE1_STRATEGIES]
    satisfied = {
        req.request_id: [
            name
            for name, s in zip(ensemble.names, strategies)
            if req.params.satisfied_by(s)
        ]
        for req in requests
    }
    result.data["satisfied"] = satisfied
    result.add_note(f"d3 is satisfied by {satisfied['d3']} (paper: s2, s3, s4)")

    solver = ADPaRExact(ensemble)
    d1 = solver.solve(requests[0])
    d2_trace = solver.trace(requests[1])
    d2 = d2_trace.result
    result.data["d1"] = d1
    result.data["d2"] = d2

    result.add_table(
        format_table(
            ["request", "alternative (q, c, l)", "distance", "strategies"],
            [
                ["d1", str(d1.alternative.as_tuple()), d1.distance, ", ".join(d1.strategy_names)],
                ["d2", str(d2.alternative.as_tuple()), d2.distance, ", ".join(d2.strategy_names)],
            ],
            title="ADPaR answers",
        )
    )

    relax_rows = [
        [ensemble.names[i], *d2_trace.relaxations[i]]
        for i in range(len(ensemble))
    ]
    result.add_table(
        format_table(
            ["", "Cost", "Quality", "Latency"],
            relax_rows,
            title="Table 3 (d2 relaxations; quality inverted)",
            precision=2,
        )
    )
    event_rows = [
        [f"{e.value:.2f}", ensemble.names[e.strategy], e.dimension_label]
        for e in d2_trace.events
    ]
    result.add_table(
        format_table(
            ["Relaxation R", "Strategy I", "Parameter D"],
            event_rows,
            title="Table 4 (sorted R / I / D)",
        )
    )
    coverage_rows = [
        [ensemble.names[i], *map(int, d2_trace.coverage_matrix[i])]
        for i in range(len(ensemble))
    ]
    result.add_table(
        format_table(
            ["", "Cost", "Quality", "Latency"],
            coverage_rows,
            title="Table 2 (coverage matrix M at returned d')",
        )
    )

    result.add_note(
        "d1 alternative (0.4, 0.5, 0.28) with s1, s2, s3 matches the paper."
    )
    result.add_note(
        "d2: the paper states (0.75, 0.5, 0.28) with s1, s2, s3, but s1's "
        "quality (0.5) violates its own suitability rule at quality 0.75; "
        "the true optimum is (0.75, 0.58, 0.28) covering s2, s3, s4 at "
        f"distance {d2.distance:.4f} < 0.4243."
    )
    return result
