"""Figure 14: percentage of satisfied requests before invoking ADPaR.

Four panels sweep k, m, |S| and W (defaults |S|=10000, m=10, k=10,
W=0.5) for uniform and normal strategy workloads.  Expected shapes:
satisfaction falls with k, is flat-ish in m, rises with |S| and with W;
the tight normal(0.75, 0.1) workload satisfies more than uniform(0.5, 1).
"""

from __future__ import annotations

import numpy as np

from repro.api import EngineService
from repro.experiments.runner import ExperimentResult
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_series
from repro.workloads import default_scenario_registry

#: The registry family every fig14 sweep derives from; the paper's
#: §5.2.2 defaults come from the catalog rather than being re-declared.
_BASE_SCENARIO = "paper-batch"
_PAPER = default_scenario_registry().get(_BASE_SCENARIO)
DEFAULTS = {
    "n_strategies": _PAPER.ensemble.n_strategies,
    "m": _PAPER.requests.m_requests,
    "k": _PAPER.requests.k,
    "availability": _PAPER.engine.availability,
}
SWEEPS = {
    "k": (10, 100, 1000, 10_000),
    "m": (10, 100, 1000, 10_000),
    "n_strategies": (10, 100, 1000, 10_000),
    "availability": (0.5, 0.6, 0.7, 0.8, 0.9),
}
QUICK_SWEEPS = {
    "k": (10, 100, 1000),
    "m": (10, 100, 1000),
    "n_strategies": (10, 100, 1000, 10_000),
    "availability": (0.5, 0.6, 0.7, 0.8, 0.9),
}


def satisfaction_rate(
    n_strategies: int,
    m: int,
    k: int,
    availability: float,
    distribution: str,
    rng: np.random.Generator,
    service: "EngineService | None" = None,
) -> float:
    """One measurement: fraction of the batch BatchStrat satisfies."""
    # strict workforce mode: the literal max-with-cost-equality rule turns
    # budgets into workforce floors and drives satisfaction to ~0 regardless
    # of the sweep (documented in EXPERIMENTS.md).
    scenario = default_scenario_registry().create(
        _BASE_SCENARIO,
        n_strategies=n_strategies,
        m_requests=m,
        k=min(k, n_strategies),
        distribution=distribution,
        availability=availability,
        workforce_mode="strict",
    )
    rng_s, rng_r = spawn_rngs(rng, 2)
    ensemble = scenario.ensemble.build(rng_s)
    requests = scenario.requests.build(rng_r)
    if service is None:
        service = EngineService()
    engine = service.engine_for(ensemble, scenario.engine)
    outcome = engine.plan(requests, objective="throughput")
    return outcome.satisfaction_rate


def run_fig14(
    repetitions: int = 5, seed: int = 17, quick: bool = False
) -> ExperimentResult:
    """Regenerate all four panels for both distributions."""
    sweeps = QUICK_SWEEPS if quick else SWEEPS
    # One service for the whole run: engines are pooled per (ensemble,
    # spec) and share its cache — decisions are unchanged (the cache is
    # differential-tested transparent), construction cost is not.
    service = EngineService()
    result = ExperimentResult(
        name="Figure 14: % satisfied requests before invoking ADPaR",
        description=(
            f"defaults |S|={DEFAULTS['n_strategies']}, m={DEFAULTS['m']}, "
            f"k={DEFAULTS['k']}, W={DEFAULTS['availability']}; "
            f"avg of {repetitions} runs."
        ),
    )
    for panel_index, (parameter, values) in enumerate(sweeps.items()):
        series = {}
        for distribution in ("uniform", "normal"):
            means = []
            for i, value in enumerate(values):
                config = dict(DEFAULTS)
                if parameter == "availability":
                    config["availability"] = value
                elif parameter == "n_strategies":
                    config["n_strategies"] = value
                else:
                    config[parameter] = value
                rngs = spawn_rngs(seed + 97 * i + 1009 * panel_index, repetitions)
                samples = [
                    satisfaction_rate(
                        config["n_strategies"],
                        config["m"],
                        config["k"],
                        config["availability"],
                        distribution,
                        rng,
                        service=service,
                    )
                    for rng in rngs
                ]
                means.append(float(np.mean(samples)))
            series[distribution.capitalize()] = means
        label = {"n_strategies": "|S|", "availability": "W"}.get(parameter, parameter)
        result.data[parameter] = {"x": list(values), **series}
        result.add_table(
            format_series(
                label, list(values), series,
                title=f"Panel: varying {label}", precision=3,
            )
        )
    result.add_note(
        "Expected shapes: falls with k; flat-ish in m; rises with |S| and W; "
        "Normal >= Uniform throughout (the tight normal cloud satisfies more)."
    )
    return result
