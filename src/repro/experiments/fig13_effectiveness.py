"""Figure 13: StratRec-guided vs unguided deployments.

§5.1.2: 10 sentence-translation + 10 text-creation tasks, each deployed
twice (mirror deployments): once with StratRec's recommended strategy,
once with workers "given the liberty to complete the task the way they
preferred" — which the paper's post-mortem identifies as chaotic
simultaneous collaboration with edit wars.  Thresholds: quality 70%,
cost $14, latency 72h.  The paper reports, with statistical significance,
higher quality and lower latency under a fixed cost for the guided runs,
and 3.45 vs 6.25 average edits.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.params import TriParams
from repro.core.request import DeploymentRequest
from repro.core.stratrec import StratRec
from repro.core.strategy import full_catalog
from repro.execution.engine import ExecutionEngine, ground_truth_for
from repro.execution.tasks import make_creation_tasks, make_translation_tasks
from repro.experiments.runner import ExperimentResult
from repro.modeling.availability import AvailabilityDistribution
from repro.modeling.linear import LinearModel
from repro.modeling.modelbank import ModelBank, ParamModels
from repro.platform.worker import generate_workers
from repro.stats.significance import paired_t_test
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table

#: §5.1.2 thresholds, normalized: 70% quality, $14 of a $20 crew budget,
#: 72 h of a 72 h window.
THRESHOLDS = TriParams(quality=0.70, cost=0.70, latency=1.0)

UNGUIDED_STRATEGY = "SIM-COL-CRO"


def build_model_bank(task_types: "tuple[str, ...]" = ("translation", "creation")) -> ModelBank:
    """Model bank over all 8 strategies per task type from ground truth."""
    bank = ModelBank()
    for task_type in task_types:
        for strategy in full_catalog():
            truth = ground_truth_for(task_type, strategy.name)
            bank.register(
                task_type,
                strategy.name,
                ParamModels(
                    quality=LinearModel(*truth["quality"]),
                    cost=LinearModel(*truth["cost"]),
                    latency=LinearModel(*truth["latency"]),
                ),
            )
    return bank


@dataclass(frozen=True)
class MirrorOutcome:
    """Guided vs unguided observation for one task."""

    task_id: str
    task_type: str
    guided_strategy: str
    guided_quality: float
    guided_cost: float
    guided_latency: float
    guided_edits: int
    unguided_quality: float
    unguided_cost: float
    unguided_latency: float
    unguided_edits: int


def run_fig13(
    tasks_per_type: int = 10,
    seed: int = 31,
    availability_mean: float = 0.7,
) -> ExperimentResult:
    """Run the mirror-deployment experiment and test significance."""
    rng = ensure_rng(seed)
    bank = build_model_bank()
    availability = AvailabilityDistribution.point(availability_mean)
    stratrec = StratRec(bank, availability)
    engine = ExecutionEngine()
    workers = generate_workers(150, seed=rng)

    mirrors: list[MirrorOutcome] = []
    for task_type, make_tasks in (
        ("translation", make_translation_tasks),
        ("creation", make_creation_tasks),
    ):
        tasks = make_tasks(tasks_per_type, seed=rng)
        for task in tasks:
            request = DeploymentRequest(
                request_id=f"req-{task.task_id}",
                params=THRESHOLDS,
                k=1,
                task_type=task_type,
            )
            advice = stratrec.recommend_strategy(request)
            strategy_name = advice.best_strategy or UNGUIDED_STRATEGY
            task_availability = float(
                np.clip(rng.normal(availability_mean, 0.05), 0.4, 1.0)
            )
            guided = engine.run_recommended(
                advice, task, task_availability,
                workers=workers, guided=True, seed=rng,
                fallback_strategy=UNGUIDED_STRATEGY,
            )
            unguided = engine.run(
                UNGUIDED_STRATEGY, task, task_availability,
                workers=workers, guided=False, seed=rng,
            )
            mirrors.append(
                MirrorOutcome(
                    task_id=task.task_id,
                    task_type=task_type,
                    guided_strategy=strategy_name,
                    guided_quality=guided.quality,
                    guided_cost=guided.cost,
                    guided_latency=guided.latency,
                    guided_edits=guided.edit_count,
                    unguided_quality=unguided.quality,
                    unguided_cost=unguided.cost,
                    unguided_latency=unguided.latency,
                    unguided_edits=unguided.edit_count,
                )
            )

    result = ExperimentResult(
        name="Figure 13: StratRec vs no-StratRec deployments",
        description=(
            f"{tasks_per_type} translation + {tasks_per_type} creation tasks, "
            "mirror deployments; quality in %, cost in $, latency in hours."
        ),
    )
    for task_type in ("translation", "creation"):
        subset = [m for m in mirrors if m.task_type == task_type]
        guided_q = [m.guided_quality for m in subset]
        unguided_q = [m.unguided_quality for m in subset]
        guided_l = [m.guided_latency for m in subset]
        unguided_l = [m.unguided_latency for m in subset]
        q_test = paired_t_test(guided_q, unguided_q)
        l_test = paired_t_test(guided_l, unguided_l)
        rows = [
            ["Quality (%)", 100 * float(np.mean(guided_q)), 100 * float(np.mean(unguided_q))],
            [
                "Cost ($)",
                20 * float(np.mean([m.guided_cost for m in subset])),
                20 * float(np.mean([m.unguided_cost for m in subset])),
            ],
            ["Latency (h)", 72 * float(np.mean(guided_l)), 72 * float(np.mean(unguided_l))],
            [
                "Edits / task",
                float(np.mean([m.guided_edits for m in subset])),
                float(np.mean([m.unguided_edits for m in subset])),
            ],
        ]
        result.add_table(
            format_table(
                ["metric", "StratRec", "Without StratRec"],
                rows,
                title=f"{task_type.capitalize()} (n={len(subset)})",
                precision=2,
            )
        )
        result.data[task_type] = {
            "rows": rows,
            "quality_p": q_test.p_value,
            "latency_p": l_test.p_value,
            "quality_gain": q_test.mean_difference,
            "latency_gain": -l_test.mean_difference,
        }
        result.add_note(
            f"{task_type}: quality gain p={q_test.p_value:.2e}, "
            f"latency reduction p={l_test.p_value:.2e} (paper: significant)."
        )
    result.data["mirrors"] = mirrors
    mean_guided_edits = float(np.mean([m.guided_edits for m in mirrors]))
    mean_unguided_edits = float(np.mean([m.unguided_edits for m in mirrors]))
    result.add_note(
        f"Edits per task: {mean_guided_edits:.2f} guided vs "
        f"{mean_unguided_edits:.2f} unguided (paper: 3.45 vs 6.25 — "
        "unguided edit wars roughly double the edit count)."
    )
    return result
