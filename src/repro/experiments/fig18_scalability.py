"""Figure 18: scalability of BatchStrat and ADPaR-Exact.

Panel (a): BruteForce grows exponentially in m while BatchStrat scales
linearly and stays sub-second even for hundreds of requests over large
ensembles.  Panels (b)/(c): ADPaR-Exact runtime grows polynomially in
|S| and k but stays seconds-scale.

Wall-clock numbers are this machine's, not the paper's i9 testbed; the
curves' *shapes* are the reproduction target.  The paper's panel (a)
x-axis reaches m=1000 for both algorithms, but exhaustive subset
enumeration at m=1000 is impossible on any hardware — we sweep brute
force over small m (where its exponential blow-up is already evident)
and BatchStrat over the paper's range.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.adpar import ADPaRExact
from repro.core.strategy import StrategyEnsemble
from repro.engine import EngineCache, RecommendationEngine
from repro.experiments.runner import ExperimentResult
from repro.utils.rng import spawn_rngs
from repro.utils.tables import format_series
from repro.workloads import default_scenario_registry
from repro.workloads.generators import hard_request_for

BATCH_M_SWEEP = (200, 400, 600, 800, 1000)
BRUTE_M_SWEEP = (8, 12, 16, 20)
ADPAR_S_SWEEP = (1000, 5000, 25000)
ADPAR_S_SWEEP_QUICK = (500, 1000, 2000)
ADPAR_K_SWEEP = (10, 50, 250)

_BATCH_DEFAULTS = {"n_strategies": 30, "k": 10, "availability": 0.75}


def _time(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def run_fig18_batch(seed: int = 61) -> ExperimentResult:
    """Panel (a): batch deployment runtime vs m."""
    result = ExperimentResult(
        name="Figure 18a: Batch Deployment scalability (varying m)",
        description=(
            f"|S|={_BATCH_DEFAULTS['n_strategies']}, k={_BATCH_DEFAULTS['k']}, "
            f"W={_BATCH_DEFAULTS['availability']}; runtime in seconds."
        ),
    )
    # The brute-force-tractable batch family at the panel's W=0.75; the
    # per-m request batches derive from its request spec.
    scenario = default_scenario_registry().create(
        "paper-batch-small",
        n_strategies=_BATCH_DEFAULTS["n_strategies"],
        k=_BATCH_DEFAULTS["k"],
        availability=_BATCH_DEFAULTS["availability"],
    )
    rng_s, rng_r = spawn_rngs(seed, 2)
    ensemble = scenario.ensemble.build(rng_s)
    engine = RecommendationEngine(ensemble, **scenario.engine.engine_kwargs())

    batch_times = []
    for m in BATCH_M_SWEEP:
        requests = scenario.requests.with_(m_requests=m).build(rng_r)
        batch_times.append(_time(lambda: engine.plan(requests, "throughput")))
    result.data["batchstrat"] = {"m": list(BATCH_M_SWEEP), "seconds": batch_times}
    result.add_table(
        format_series(
            "m", list(BATCH_M_SWEEP), {"BatchStrat (s)": batch_times},
            title="BatchStrat runtime", precision=5,
        )
    )

    brute_times = []
    for m in BRUTE_M_SWEEP:
        requests = scenario.requests.with_(m_requests=m).build(rng_r)
        brute_times.append(
            _time(lambda: engine.plan(requests, "throughput", planner="batch-bruteforce"))
        )
    result.data["bruteforce"] = {"m": list(BRUTE_M_SWEEP), "seconds": brute_times}
    result.add_table(
        format_series(
            "m", list(BRUTE_M_SWEEP), {"BruteForce (s)": brute_times},
            title="BruteForce runtime (exponential range)", precision=5,
        )
    )
    growth = (
        brute_times[-1] / max(brute_times[0], 1e-9) if brute_times[0] else float("inf")
    )
    result.add_note(
        f"BruteForce grows ~{growth:.0f}x from m={BRUTE_M_SWEEP[0]} to "
        f"m={BRUTE_M_SWEEP[-1]}; BatchStrat stays near-linear and handles "
        f"m={BATCH_M_SWEEP[-1]} in {batch_times[-1]:.3f}s."
    )
    return result


def run_fig18_adpar(seed: int = 67, quick: bool = False) -> ExperimentResult:
    """Panels (b)/(c): ADPaR-Exact runtime vs |S| and k."""
    s_sweep = ADPAR_S_SWEEP_QUICK if quick else ADPAR_S_SWEEP
    result = ExperimentResult(
        name="Figure 18b/c: ADPaR-Exact scalability",
        description="Runtime in seconds; k=5 for the |S| sweep, |S|=10000 for the k sweep."
        if not quick
        else "Runtime in seconds (quick mode: reduced sizes).",
    )
    base = default_scenario_registry().get("paper-adpar")
    rng_pts, rng_req = spawn_rngs(seed, 2)
    # One cache for the whole figure: every engine (and the standalone
    # ADPaRExact reference below) reads the per-ensemble relaxation
    # space out of it instead of rebuilding its own.
    cache = EngineCache()

    s_times = []
    for n in s_sweep:
        points = base.with_(n_strategies=n).ensemble.build_points(rng_pts)
        request = hard_request_for(points, rng_req, tightness=base.tightness)
        solver = RecommendationEngine(
            StrategyEnsemble.from_params(points), availability=1.0, cache=cache
        )
        s_times.append(_time(lambda: solver.recommend_alternative(request, 5)))
    result.data["s_sweep"] = {"|S|": list(s_sweep), "seconds": s_times}
    result.add_table(
        format_series(
            "|S|", list(s_sweep), {"ADPaR-Exact (s)": s_times},
            title="Panel (b): varying |S| (k=5)", precision=5,
        )
    )

    n_for_k = 2000 if quick else 10_000
    points = base.with_(n_strategies=n_for_k).ensemble.build_points(rng_pts)
    request = hard_request_for(points, rng_req, tightness=base.tightness)
    ensemble = StrategyEnsemble.from_params(points)
    solver = RecommendationEngine(ensemble, availability=1.0, cache=cache)
    k_times = [
        _time(lambda k=k: solver.recommend_alternative(request, k))
        for k in ADPAR_K_SWEEP
    ]
    result.data["k_sweep"] = {"k": list(ADPAR_K_SWEEP), "seconds": k_times}
    result.add_table(
        format_series(
            "k", list(ADPAR_K_SWEEP), {"ADPaR-Exact (s)": k_times},
            title=f"Panel (c): varying k (|S|={n_for_k})", precision=5,
        )
    )
    result.add_note(
        "Growth is polynomial but the sweep's Figure-8 early-exit keeps "
        "absolute times to seconds, matching the paper's 'a few seconds' claim."
    )

    # Batch amortization (beyond the paper): R distinct hard requests over
    # the panel-(c) ensemble, solved per-request by the reference
    # ADPaRExact vs. in one engine.recommend_alternatives call, which
    # routes through the registry's vectorized batch path.
    batch_size = 4 if quick else 8
    batch_requests = [
        hard_request_for(points, rng_req, tightness=base.tightness)
        for _ in range(batch_size)
    ]
    reference = ADPaRExact(
        ensemble, space=cache.relaxation_space(ensemble, 1.0)
    )
    t_scalar = _time(
        lambda: [reference.solve(r, 5) for r in batch_requests]
    )
    batch_engine = RecommendationEngine(ensemble, availability=1.0, cache=cache)
    t_batch = _time(
        lambda: batch_engine.recommend_alternatives(batch_requests, 5)
    )
    speedup = t_scalar / max(t_batch, 1e-9)
    result.data["batch_amortization"] = {
        "requests": batch_size,
        "scalar_seconds": t_scalar,
        "batch_seconds": t_batch,
        "speedup": speedup,
    }
    result.add_table(
        format_series(
            "path",
            ["scalar", "batch"],
            {"seconds": [t_scalar, t_batch]},
            title=f"Batch amortization ({batch_size} requests, |S|={n_for_k}, k=5)",
            precision=5,
        )
    )
    result.add_note(
        f"recommend_alternatives amortizes the relaxation geometry: "
        f"{speedup:.1f}x over per-request ADPaRExact on {batch_size} "
        "hard requests (identical results; see bench_adpar_solvers.py)."
    )
    return result
