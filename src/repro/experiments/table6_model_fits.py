"""Table 6: (α, β) estimation for deployment parameters vs availability.

§5.1.1 question 2: deploy each (task type, strategy) pair at several
availability levels, observe quality/cost/latency, fit linear models and
check the known coefficients land inside the 90% confidence interval of
the fitted line.  We run the simulated execution engine over a ladder of
availability levels and calibrate.
"""

from __future__ import annotations

import numpy as np

from repro.execution.engine import GROUND_TRUTH, ExecutionEngine
from repro.execution.tasks import make_creation_tasks, make_translation_tasks
from repro.experiments.runner import ExperimentResult
from repro.modeling.calibration import CalibrationResult, calibrate_from_observations
from repro.platform.worker import generate_workers
from repro.utils.rng import ensure_rng
from repro.utils.tables import format_table

PAIRS = (
    ("translation", "SEQ-IND-CRO"),
    ("translation", "SIM-COL-CRO"),
    ("creation", "SEQ-IND-CRO"),
    ("creation", "SIM-COL-CRO"),
)

AVAILABILITY_LADDER = (0.6, 0.7, 0.8, 0.9, 1.0)


def calibrate_pair(
    task_type: str,
    strategy_name: str,
    seed: int = 5,
    samples_per_level: int = 4,
    ladder: tuple = AVAILABILITY_LADDER,
) -> CalibrationResult:
    """Deploy a (task, strategy) pair along the availability ladder and fit."""
    rng = ensure_rng(seed)
    engine = ExecutionEngine()
    workers = generate_workers(120, seed=rng)
    if task_type == "translation":
        tasks = make_translation_tasks(samples_per_level * len(ladder), seed=rng)
    else:
        tasks = make_creation_tasks(samples_per_level * len(ladder), seed=rng)
    observations = []
    task_iter = iter(tasks)
    for availability in ladder:
        for _ in range(samples_per_level):
            outcome = engine.run(
                strategy_name,
                next(task_iter),
                availability,
                workers=workers,
                guided=True,
                seed=rng,
            )
            observations.append(outcome.observation())
    return calibrate_from_observations(
        task_type, strategy_name, observations, confidence=0.90
    )


def run_table6(seed: int = 5, samples_per_level: int = 4) -> ExperimentResult:
    """Regenerate Table 6 and verify the 90%-CI containment claim."""
    result = ExperimentResult(
        name="Table 6: alpha, beta estimation",
        description=(
            "Linear fits of quality/cost/latency vs availability from "
            "simulated deployments; paper ground truth in parentheses."
        ),
    )
    rows = []
    containments = []
    fits = {}
    for i, (task_type, strategy_name) in enumerate(PAIRS):
        calibration = calibrate_pair(
            task_type, strategy_name, seed=seed + i, samples_per_level=samples_per_level
        )
        fits[(task_type, strategy_name)] = calibration
        truth = GROUND_TRUTH[(task_type, strategy_name)]
        for parameter, fit in (
            ("Quality", calibration.quality_fit),
            ("Cost", calibration.cost_fit),
            ("Latency", calibration.latency_fit),
        ):
            true_alpha, true_beta = truth[parameter.lower()]
            in_ci = fit.significance.slope_in_ci(true_alpha)
            containments.append(in_ci)
            rows.append(
                [
                    f"{task_type} {strategy_name}",
                    parameter,
                    f"{fit.alpha:.2f} ({true_alpha:.2f})",
                    f"{fit.beta:.2f} ({true_beta:.2f})",
                    f"{fit.r_squared:.3f}",
                    "yes" if in_ci else "NO",
                ]
            )
    result.add_table(
        format_table(
            ["Task-Strategy", "Parameter", "alpha (paper)", "beta (paper)", "R^2", "alpha in 90% CI"],
            rows,
            title="Table 6 reproduction",
        )
    )
    result.data["fits"] = fits
    fraction = float(np.mean(containments))
    result.data["ci_containment"] = fraction
    result.add_note(
        f"{fraction:.0%} of ground-truth slopes fall inside the fitted 90% CI "
        "(paper: estimates always within the 90% interval)."
    )
    return result
