"""Baseline2 (§5.2.1): one-parameter-at-a-time query refinement.

Inspired by interactive query refinement (Mishra et al.): the original
request is modified along *one* dimension at a time and is not
optimization-driven.  For each dimension we compute the smallest single-
dimension relaxation admitting ``k`` strategies; if no single dimension
suffices, dimensions are relaxed greedily in (cost, quality, latency)
order, each time fully unlocking that dimension's k-th candidate value.
ADPaR-Exact, which co-relaxes multiple parameters, dominates it.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.adpar import ADPaRResult, unpack_request
from repro.core.params import TriParams
from repro.core.relaxation import RelaxationSpace
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble


class OneDimBaseline:
    """Single-dimension relaxation baseline for ADPaR."""

    def __init__(
        self,
        ensemble: StrategyEnsemble,
        availability: float = 1.0,
        space: "RelaxationSpace | None" = None,
    ):
        self.ensemble = ensemble
        self.availability = float(availability)
        if space is None:
            space = RelaxationSpace(ensemble, self.availability)
        elif space.ensemble is not ensemble or space.availability != self.availability:
            raise ValueError("space was built for a different (ensemble, availability)")
        self.space = space
        self._points = space.points

    def solve(
        self, request: "DeploymentRequest | TriParams", k: "int | None" = None
    ) -> ADPaRResult:
        """Smallest one-dimension (or greedy multi-step) relaxation."""
        params, k = unpack_request(request, k, self._points.shape[0])
        relax = self.space.relaxations(self.space.origin_of(params))

        bound = self._single_dimension(relax, k)
        if bound is None:
            bound = self._greedy_multi(relax, k)
        return self._result(params, relax, bound, k)

    # ------------------------------------------------------------- strategies
    def _single_dimension(self, relax: np.ndarray, k: int) -> "np.ndarray | None":
        """Try relaxing exactly one dimension; keep the best objective."""
        best = None
        best_obj = math.inf
        for dim in range(3):
            others = [d for d in range(3) if d != dim]
            eligible = (relax[:, others] <= 1e-12).all(axis=1)
            values = relax[eligible, dim]
            if values.size < k:
                continue
            needed = float(np.partition(values, k - 1)[k - 1])
            obj = needed * needed
            if obj < best_obj:
                best_obj = obj
                bound = np.zeros(3)
                bound[dim] = needed
                best = bound
        return best

    def _greedy_multi(self, relax: np.ndarray, k: int) -> np.ndarray:
        """Fallback: unlock dimensions one at a time, in a fixed order.

        After unlocking dimension ``d`` the bound is set to the k-th
        smallest value of ``d`` among strategies already satisfying the
        *locked* dimensions — the non-optimization-driven behaviour the
        paper attributes to refinement baselines.
        """
        bound = np.zeros(3)
        for dim in range(3):
            later = list(range(dim + 1, 3))
            mask = np.ones(relax.shape[0], dtype=bool)
            for d in range(dim):
                mask &= relax[:, d] <= bound[d] + 1e-12
            if later:
                mask &= (relax[:, later] <= 1e-12).all(axis=1)
            values = relax[mask, dim]
            if values.size >= k:
                bound[dim] = float(np.partition(values, k - 1)[k - 1])
                covered = (relax <= bound[None, :] + 1e-12).all(axis=1)
                if int(covered.sum()) >= k:
                    return bound
            else:
                # Not enough strategies under the locked prefix: fully open
                # this dimension and move on.
                bound[dim] = float(relax[:, dim].max()) if relax.size else 0.0
        return bound

    def _result(
        self, params: TriParams, relax: np.ndarray, bound: np.ndarray, k: int
    ) -> ADPaRResult:
        covered = np.flatnonzero((relax <= bound[None, :] + 1e-9).all(axis=1))
        norms = np.linalg.norm(relax[covered], axis=1)
        order = np.lexsort((covered, norms))
        chosen = tuple(int(i) for i in covered[order][:k])
        x, y, z = (float(v) for v in bound)
        alternative = TriParams(
            quality=min(max(params.quality - y, 0.0), 1.0),
            cost=min(max(params.cost + x, 0.0), 1.0),
            latency=min(max(params.latency + z, 0.0), 1.0),
        )
        sq = float((bound**2).sum())
        return ADPaRResult(
            original=params,
            alternative=alternative,
            distance=math.sqrt(sq),
            squared_distance=sq,
            relaxation=(x, y, z),
            strategy_indices=chosen,
            strategy_names=tuple(self.ensemble.names[i] for i in chosen),
        )
