"""BaselineG (§5.2.1): plain density greedy without BatchStrat's backstop.

Sorts requests by ``f_i / ~w_i`` descending and admits them until the
workforce budget runs out.  Identical to BatchStrat for throughput (where
the backstop never fires) but can lose up to the whole optimum for
pay-off — the classic knapsack greedy failure mode — which is why it sits
below BatchStrat in Figures 15/16.
"""

from __future__ import annotations

import math

from repro.core.batchstrat import BatchOutcome, StrategyRecommendation
from repro.core.objectives import (
    ObjectiveSpec,
    objective_name,
    request_value,
    validate_objective,
)
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.core.workforce import WorkforceComputer

_EPS = 1e-9


class BaselineG:
    """Greedy-by-density baseline sharing BatchStrat's workforce machinery."""

    def __init__(
        self,
        ensemble: StrategyEnsemble,
        availability: float,
        aggregation: str = "sum",
        workforce_mode: str = "paper",
        eligibility: str = "pool",
        computer: "WorkforceComputer | None" = None,
    ):
        self.ensemble = ensemble
        self.availability = float(availability)
        self.computer = computer if computer is not None else WorkforceComputer(
            ensemble,
            mode=workforce_mode,
            aggregation=aggregation,
            eligibility=eligibility,
            availability=self.availability,
        )

    def run(
        self,
        requests: "list[DeploymentRequest]",
        objective: ObjectiveSpec = "throughput",
    ) -> BatchOutcome:
        """Greedy admission in non-increasing value-density order."""
        validate_objective(objective)
        needs = self.computer.aggregate_all(requests)
        candidates = []
        infeasible = []
        for request, need in zip(requests, needs):
            if need.feasible:
                candidates.append((request, need))
            else:
                infeasible.append(request)

        def density(item) -> float:
            request, need = item
            value = request_value(request, objective)
            if need.requirement <= _EPS:
                return math.inf
            return value / need.requirement

        candidates.sort(
            key=lambda item: (-density(item), item[1].requirement, item[0].request_id)
        )
        chosen = []
        used = 0.0
        for request, need in candidates:
            if used + need.requirement > self.availability + _EPS:
                # BaselineG stops at the first request that does not fit —
                # no skip-ahead, no backstop (that is the whole baseline).
                break
            chosen.append((request, need))
            used += need.requirement

        chosen_ids = {request.request_id for request, _ in chosen}
        satisfied = tuple(
            StrategyRecommendation(
                request=request,
                strategy_names=tuple(
                    self.ensemble.names[i] for i in need.strategy_indices
                ),
                workforce=need.requirement,
            )
            for request, need in chosen
        )
        unsatisfied = tuple(
            request
            for request, _ in candidates
            if request.request_id not in chosen_ids
        )
        value = float(sum(request_value(r, objective) for r, _ in chosen))
        return BatchOutcome(
            objective=objective_name(objective),
            objective_value=value,
            workforce_available=self.availability,
            workforce_used=used,
            satisfied=satisfied,
            unsatisfied=unsatisfied,
            infeasible=tuple(infeasible),
        )
