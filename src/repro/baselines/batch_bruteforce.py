"""Brute-force batch deployment (§5.2.1 "Brute Force").

Enumerates every subset of deployment requests, keeps those whose total
workforce requirement fits the availability budget, and returns the one
maximizing the objective.  Exact for both objectives; exponential in
``m``, so guarded (Figure 18a is precisely about this blow-up).
"""

from __future__ import annotations

from itertools import combinations

from repro.core.batchstrat import BatchOutcome, StrategyRecommendation
from repro.core.objectives import (
    ObjectiveSpec,
    objective_name,
    request_value,
    validate_objective,
)
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.core.workforce import WorkforceComputer

_EPS = 1e-9
MAX_BRUTE_FORCE_M = 24


def batch_brute_force(
    ensemble: StrategyEnsemble,
    requests: "list[DeploymentRequest]",
    availability: float,
    objective: ObjectiveSpec = "throughput",
    aggregation: str = "sum",
    workforce_mode: str = "paper",
    eligibility: str = "pool",
    computer: "WorkforceComputer | None" = None,
) -> BatchOutcome:
    """Optimal batch selection by subset enumeration.

    Raises ``ValueError`` for batches beyond :data:`MAX_BRUTE_FORCE_M`
    requests — by then the search space exceeds 16M subsets and the greedy
    solver is the intended tool.
    """
    validate_objective(objective)
    if len(requests) > MAX_BRUTE_FORCE_M:
        raise ValueError(
            f"brute force limited to m <= {MAX_BRUTE_FORCE_M}, got {len(requests)}"
        )
    if computer is None:
        computer = WorkforceComputer(
            ensemble,
            mode=workforce_mode,
            aggregation=aggregation,
            eligibility=eligibility,
            availability=availability,
        )
    needs = computer.aggregate_all(requests)
    candidates = [
        (request, need)
        for request, need in zip(requests, needs)
        if need.feasible and need.requirement <= availability + _EPS
    ]
    infeasible = tuple(
        request for request, need in zip(requests, needs) if not need.feasible
    )

    best_subset: tuple = ()
    best_value = 0.0
    best_used = 0.0
    n = len(candidates)
    for size in range(1, n + 1):
        for subset in combinations(range(n), size):
            used = sum(candidates[i][1].requirement for i in subset)
            if used > availability + _EPS:
                continue
            value = sum(
                request_value(candidates[i][0], objective) for i in subset
            )
            if value > best_value + _EPS or (
                abs(value - best_value) <= _EPS and used < best_used - _EPS
            ):
                best_value = value
                best_used = used
                best_subset = subset

    chosen_ids = {candidates[i][0].request_id for i in best_subset}
    satisfied = tuple(
        StrategyRecommendation(
            request=candidates[i][0],
            strategy_names=tuple(
                ensemble.names[j] for j in candidates[i][1].strategy_indices
            ),
            workforce=candidates[i][1].requirement,
        )
        for i in best_subset
    )
    unsatisfied = tuple(
        request
        for request, need in zip(requests, needs)
        if need.feasible and request.request_id not in chosen_ids
    )
    return BatchOutcome(
        objective=objective_name(objective),
        objective_value=float(best_value),
        workforce_available=float(availability),
        workforce_used=float(best_used),
        satisfied=satisfied,
        unsatisfied=unsatisfied,
        infeasible=infeasible,
    )
