"""Baselines from §5.2.1: exhaustive and heuristic comparators.

Batch deployment: :func:`batch_brute_force` (exact, exponential) and
:class:`BaselineG` (greedy without BatchStrat's backstop).

ADPaR: :func:`adpar_brute_force` (ADPaRB — subset enumeration, exact,
exponential), :class:`OneDimBaseline` (Baseline2 — relaxes one parameter
at a time, Mishra-style), :class:`RTreeBaseline` (Baseline3 — R-tree MBB
scan).
"""

from repro.baselines.batch_bruteforce import batch_brute_force
from repro.baselines.batch_greedy import BaselineG
from repro.baselines.adpar_bruteforce import adpar_brute_force
from repro.baselines.adpar_onedim import OneDimBaseline
from repro.baselines.adpar_rtree import RTreeBaseline

__all__ = [
    "batch_brute_force",
    "BaselineG",
    "adpar_brute_force",
    "OneDimBaseline",
    "RTreeBaseline",
]
