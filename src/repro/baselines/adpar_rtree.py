"""Baseline3 (§5.2.1): R-tree MBB scan for alternative parameters.

Strategies are indexed as 3-D points in an R-tree.  The baseline scans
tree nodes looking for a minimum bounding box that (a) extends the
original request box and (b) contains exactly ``k`` strategies, returning
its top-right corner; failing that, it falls back to the smallest MBB
with at least ``k`` strategies and returns ``k`` of them arbitrarily
(deterministically here, for reproducibility).  Not optimization-driven —
expected to trail both ADPaR-Exact and Baseline2 (it is the worst curve in
Figure 17).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.adpar import ADPaRResult, unpack_request
from repro.core.params import TriParams
from repro.core.relaxation import RelaxationSpace
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.geometry.box import Box3
from repro.geometry.point import Point3
from repro.index.rtree import RTree


class RTreeBaseline:
    """R-tree-driven heuristic for ADPaR."""

    def __init__(
        self,
        ensemble: StrategyEnsemble,
        availability: float = 1.0,
        max_entries: int = 8,
        space: "RelaxationSpace | None" = None,
    ):
        self.ensemble = ensemble
        self.availability = float(availability)
        if space is None:
            space = RelaxationSpace(ensemble, self.availability)
        elif space.ensemble is not ensemble or space.availability != self.availability:
            raise ValueError("space was built for a different (ensemble, availability)")
        self.space = space
        self._points_arr = space.points
        points = [Point3(*row) for row in self._points_arr]
        self.tree = RTree.bulk_load(points, max_entries=max_entries)

    def solve(
        self, request: "DeploymentRequest | TriParams", k: "int | None" = None
    ) -> ADPaRResult:
        """Alternative parameters from the best-fitting MBB corner."""
        params, k = unpack_request(request, k, len(self.ensemble))
        origin = self.space.origin_of(params)
        exact_corner = None
        exact_count = None
        fallback_corner = None
        fallback_count = math.inf
        for node in self.tree.iter_nodes():
            if node.mbb is None:
                continue
            corner = node.mbb.top_right().as_array()
            # The candidate box must extend the request: bounds can only relax.
            corner = np.maximum(corner, origin)
            count = int((self._points_arr <= corner[None, :] + 1e-9).all(axis=1).sum())
            if count == k:
                candidate = corner
                if exact_corner is None or self._norm(candidate, origin) < self._norm(
                    exact_corner, origin
                ):
                    exact_corner = candidate
                    exact_count = count
            elif count > k and count < fallback_count:
                fallback_count = count
                fallback_corner = corner
        if exact_corner is not None:
            corner = exact_corner
        elif fallback_corner is not None:
            corner = fallback_corner
        else:
            # No MBB covers k strategies even after extension; cover everything.
            corner = np.maximum(self._points_arr.max(axis=0), origin)
        return self._result(params, origin, corner, k)

    @staticmethod
    def _norm(corner: np.ndarray, origin: np.ndarray) -> float:
        delta = np.maximum(corner - origin, 0.0)
        return float((delta**2).sum())

    def _result(
        self, params: TriParams, origin: np.ndarray, corner: np.ndarray, k: int
    ) -> ADPaRResult:
        delta = np.maximum(corner - origin, 0.0)
        covered = np.flatnonzero(
            (self._points_arr <= corner[None, :] + 1e-9).all(axis=1)
        )
        chosen = tuple(int(i) for i in covered[:k])
        x, y, z = (float(v) for v in delta)
        alternative = TriParams(
            quality=min(max(params.quality - y, 0.0), 1.0),
            cost=min(max(params.cost + x, 0.0), 1.0),
            latency=min(max(params.latency + z, 0.0), 1.0),
        )
        sq = float((delta**2).sum())
        return ADPaRResult(
            original=params,
            alternative=alternative,
            distance=math.sqrt(sq),
            squared_distance=sq,
            relaxation=(x, y, z),
            strategy_indices=chosen,
            strategy_names=tuple(self.ensemble.names[i] for i in chosen),
        )
