"""ADPaRB (§5.2.1): exact ADPaR by exhaustive subset enumeration.

Examines every size-``k`` subset of strategies; the tightest alternative
parameters covering a subset are the componentwise maxima of its
relaxations, so each subset is scored in O(k).  Exponential
(``C(|S|, k)``) but exact — the property tests pit ADPaR-Exact against it.
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.core.adpar import ADPaRResult, unpack_request
from repro.core.params import TriParams
from repro.core.relaxation import RelaxationSpace
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble

MAX_SUBSETS = 5_000_000


def _num_subsets(n: int, k: int) -> float:
    return math.comb(n, k)


def adpar_brute_force(
    ensemble: StrategyEnsemble,
    request: "DeploymentRequest | TriParams",
    k: "int | None" = None,
    availability: float = 1.0,
    space: "RelaxationSpace | None" = None,
) -> ADPaRResult:
    """Exact alternative parameters by enumerating all k-subsets."""
    if space is None:
        space = RelaxationSpace(ensemble, availability)
    elif space.ensemble is not ensemble or space.availability != float(availability):
        raise ValueError("space was built for a different (ensemble, availability)")
    n = len(ensemble)
    params, k = unpack_request(request, k, n)
    if _num_subsets(n, k) > MAX_SUBSETS:
        raise ValueError(
            f"C({n}, {k}) subsets exceed the brute-force budget of {MAX_SUBSETS}"
        )

    relax = space.relaxations(space.origin_of(params))

    best_obj = math.inf
    best_subset: "tuple[int, ...] | None" = None
    best_bound = None
    for subset in combinations(range(n), k):
        bound = relax[list(subset)].max(axis=0)
        obj = float((bound**2).sum())
        if obj < best_obj - 1e-15:
            best_obj = obj
            best_subset = subset
            best_bound = bound

    assert best_subset is not None and best_bound is not None
    x, y, z = (float(v) for v in best_bound)
    alternative = TriParams(
        quality=min(max(params.quality - y, 0.0), 1.0),
        cost=min(max(params.cost + x, 0.0), 1.0),
        latency=min(max(params.latency + z, 0.0), 1.0),
    )
    return ADPaRResult(
        original=params,
        alternative=alternative,
        distance=math.sqrt(best_obj),
        squared_distance=best_obj,
        relaxation=(x, y, z),
        strategy_indices=tuple(best_subset),
        strategy_names=tuple(ensemble.names[i] for i in best_subset),
    )
