"""Durable decision journal: append-only event log, snapshots, replay.

The durability layer over the serve stack (ROADMAP "durable decision
log + reenactment replay"):

* :class:`~repro.journal.journal.DecisionJournal` — an append-only JSONL
  event log of every service-level decision (session open/close, submit
  bursts, retries, complete/revoke, ensemble registrations), with
  crash-safe framing, size-based segment rotation, and periodic
  checkpoints carrying :class:`~repro.engine.session.SessionState`
  snapshots so a restarted ``repro serve --journal DIR`` rebuilds all
  live sessions from checkpoint + tail.
* :func:`~repro.journal.replay.replay_trace` — reenactment (Arab et
  al., PAPERS.md): re-drive a recorded trace through the real service
  under a possibly different :class:`~repro.api.wire.EngineSpec` and
  diff every decision against the recording (``repro replay``).

Journal lines reuse the :mod:`repro.api.wire` codecs, so a trace is the
same JSON vocabulary clients see on the wire.
"""

from repro.journal.events import (
    CheckpointEvent,
    EnsembleEvent,
    ReleaseEvent,
    RetryEvent,
    SessionCheckpoint,
    SessionCloseEvent,
    SessionOpenEvent,
    SubmitEvent,
    event_from_dict,
    event_to_dict,
    session_state_from_dict,
    session_state_to_dict,
)
from repro.journal.journal import DecisionJournal, journal_files, read_events
from repro.journal.replay import (
    DecisionDiff,
    ReplayReport,
    TraceWorkload,
    apply_overrides,
    load_trace,
    reenact_on_engine,
    replay_trace,
)

__all__ = [
    "CheckpointEvent",
    "DecisionDiff",
    "DecisionJournal",
    "EnsembleEvent",
    "ReleaseEvent",
    "ReplayReport",
    "RetryEvent",
    "SessionCheckpoint",
    "SessionCloseEvent",
    "SessionOpenEvent",
    "SubmitEvent",
    "TraceWorkload",
    "apply_overrides",
    "event_from_dict",
    "event_to_dict",
    "journal_files",
    "load_trace",
    "read_events",
    "reenact_on_engine",
    "replay_trace",
    "session_state_from_dict",
    "session_state_to_dict",
]
