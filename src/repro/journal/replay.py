"""Reenactment replay: re-drive a recorded trace, diff every decision.

The reenactment idea (Arab et al., PAPERS.md): a recorded decision
journal is not just a recovery artifact but a *workload* — re-driving
its sessions through the real service under a possibly different
:class:`~repro.api.wire.EngineSpec` answers "what would this engine
configuration have decided on last week's traffic?" with a structured
decision diff instead of a guess.

Comparison is exact: every recorded/replayed decision pair is matched on
``StreamDecision.comparison_key()`` — request id, status, strategy
choice, workforce reserved, and the ADPaR alternative's parameters /
distance / strategy indices — so replaying a trace under the *same*
spec must reproduce every decision bitwise
(:attr:`ReplayReport.bitwise_identical`, the determinism gate pinned by
``benchmarks/bench_journal.py``), and any drift under a *different*
spec surfaces as admit/defer flips, alternative-quality deltas, and
ledger-counter deltas.

Two drive paths share one event walker:

* :func:`replay_trace` — the ``repro replay`` path: re-drives the trace
  through a real :class:`~repro.api.EngineService` (typed envelopes,
  same validation as live traffic), honoring per-session recorded specs
  with optional field overrides (``--planner``/``--solver``/...).
* :func:`reenact_on_engine` — the ``simulate`` path: re-drives the
  primary ensemble's sessions on an already-built engine, which is how
  a journal file plugs into the scenario envelope as a
  ``recorded-trace`` workload (:class:`TraceWorkload`).

Service imports are deliberately lazy: this module loads as part of
``repro.journal``'s package init, which ``repro.api.service`` itself
triggers by importing the event codecs.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace

from repro.exceptions import (
    InvalidSpecError,
    JournalCorruptError,
    ReproError,
)
from repro.journal.events import (
    CheckpointEvent,
    EnsembleEvent,
    ReleaseEvent,
    RetryEvent,
    SessionCloseEvent,
    SessionOpenEvent,
    SubmitEvent,
)
from repro.journal.journal import read_events

#: Default cap on materialized per-decision diffs in a report (the
#: aggregate counters always cover the full trace).
MAX_DIFFS = 64


# ---------------------------------------------------------------- workload
@dataclass(frozen=True)
class TraceWorkload:
    """A recorded journal trace as a drivable scenario payload.

    ``fingerprint`` names the trace's *primary* ensemble — the one whose
    sessions submitted the most requests (ties break to first recorded)
    — which is the ensemble the ``recorded-trace`` scenario family
    materializes; ``sessions``/``arrivals`` count that ensemble's share
    of the trace.
    """

    trace: str
    fingerprint: str
    events: tuple
    sessions: int
    arrivals: int


def load_trace(path):
    """Read a journal into ``(primary ensemble, TraceWorkload)``.

    ``path`` is a journal directory or a single segment file.  Raises
    :class:`JournalCorruptError` when the trace is unreadable or records
    no inline ensemble (a trace without its ensembles cannot be
    re-driven — checkpoints embed them precisely so rotated-away
    ``ensemble`` events are not a replay blocker).
    """
    events = read_events(path)
    ensembles: "dict[str, object]" = {}
    order: "list[str]" = []
    session_fp: "dict[str, str]" = {}
    submitted: "dict[str, int]" = {}

    def _note(ref) -> None:
        if ref.ensemble is not None and ref.fingerprint not in ensembles:
            ensembles[ref.fingerprint] = ref.ensemble
            order.append(ref.fingerprint)

    for event in events:
        if isinstance(event, EnsembleEvent):
            _note(event.ref)
        elif isinstance(event, CheckpointEvent):
            for ref in event.ensembles:
                _note(ref)
            for entry in event.sessions:
                session_fp.setdefault(entry.session_id, entry.fingerprint)
        elif isinstance(event, SessionOpenEvent):
            session_fp[event.session_id] = event.fingerprint
        elif isinstance(event, SubmitEvent):
            fingerprint = session_fp.get(event.session_id)
            if fingerprint is not None:
                submitted[fingerprint] = submitted.get(fingerprint, 0) + len(
                    event.requests
                )
    if not ensembles:
        raise JournalCorruptError(
            f"trace {path} records no inline ensemble; nothing to replay"
        )
    primary = max(order, key=lambda fp: (submitted.get(fp, 0), -order.index(fp)))
    sessions = sum(1 for fp in session_fp.values() if fp == primary)
    workload = TraceWorkload(
        trace=str(path),
        fingerprint=primary,
        events=tuple(events),
        sessions=sessions,
        arrivals=submitted.get(primary, 0),
    )
    return ensembles[primary], workload


def apply_overrides(spec, overrides: "dict | None"):
    """A copy of ``spec`` with ``overrides`` applied field-by-field.

    Unknown field names raise :class:`InvalidSpecError` (the stable
    ``invalid_spec`` wire code), mirroring ``ScenarioSpec.with_``.
    """
    if not overrides:
        return spec
    allowed = {f.name for f in fields(spec)}
    unknown = sorted(set(overrides) - allowed)
    if unknown:
        raise InvalidSpecError(
            f"unknown EngineSpec override(s) {unknown}; "
            f"expected a subset of {sorted(allowed)}"
        )
    return replace(spec, **overrides)


# -------------------------------------------------------------------- diffs
def _status_str(decision) -> "str | None":
    return None if decision is None else decision.status.value


def _request_id(decision) -> str:
    # Recorded DecisionRecords carry the id directly; replayed
    # StreamDecisions reach it through their embedded request.
    request = getattr(decision, "request", None)
    return decision.request_id if request is None else request.request_id


def _distance(decision) -> "float | None":
    if decision is None or decision.alternative is None:
        return None
    return decision.alternative.distance


@dataclass(frozen=True)
class DecisionDiff:
    """One recorded/replayed decision pair that did not match exactly.

    ``replayed_status`` is ``None`` for a recorded decision the replay
    produced no counterpart for (and vice versa) — e.g. a burst the
    replay target rejected because an earlier flip left its request id
    still active.
    """

    session_id: str
    request_id: str
    source: str  # "submit" | "retry"
    recorded_status: "str | None"
    replayed_status: "str | None"
    recorded_reserved: float = 0.0
    replayed_reserved: float = 0.0
    recorded_distance: "float | None" = None
    replayed_distance: "float | None" = None

    @property
    def flipped(self) -> bool:
        """True when the admission *status* changed (not just quality)."""
        return self.recorded_status != self.replayed_status

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "request_id": self.request_id,
            "source": self.source,
            "recorded_status": self.recorded_status,
            "replayed_status": self.replayed_status,
            "recorded_reserved": self.recorded_reserved,
            "replayed_reserved": self.replayed_reserved,
            "recorded_distance": self.recorded_distance,
            "replayed_distance": self.replayed_distance,
            "flipped": self.flipped,
        }


@dataclass(frozen=True)
class ReplayReport:
    """Aggregate outcome of one reenactment pass.

    ``decisions`` counts compared pairs; ``identical`` counts pairs
    whose ``comparison_key`` matched exactly; ``flips`` counts status
    flips (a strict subset of non-identical pairs); ``diffs`` holds up
    to ``max_diffs`` materialized :class:`DecisionDiff` rows, most
    trace-ordered first (``diffs_truncated`` says whether the cap bit).
    """

    trace: str
    sessions: int
    skipped_sessions: int
    events: int
    decisions: int
    identical: int
    flips: int
    diffs: "tuple[DecisionDiff, ...]"
    diffs_truncated: bool
    recorded_counts: dict
    replayed_counts: dict
    reserved_delta: float
    mean_distance_delta: float
    overrides: dict

    @property
    def bitwise_identical(self) -> bool:
        """True when every compared pair matched exactly (the
        same-spec determinism gate)."""
        return self.identical == self.decisions

    @property
    def changed(self) -> int:
        return self.decisions - self.identical

    def counter_deltas(self) -> dict:
        """Per-status replayed-minus-recorded decision count deltas."""
        keys = sorted(set(self.recorded_counts) | set(self.replayed_counts))
        return {
            key: self.replayed_counts.get(key, 0)
            - self.recorded_counts.get(key, 0)
            for key in keys
        }

    def to_dict(self) -> dict:
        return {
            "trace": self.trace,
            "sessions": self.sessions,
            "skipped_sessions": self.skipped_sessions,
            "events": self.events,
            "decisions": self.decisions,
            "identical": self.identical,
            "changed": self.changed,
            "flips": self.flips,
            "bitwise_identical": self.bitwise_identical,
            "recorded_counts": dict(self.recorded_counts),
            "replayed_counts": dict(self.replayed_counts),
            "counter_deltas": self.counter_deltas(),
            "reserved_delta": self.reserved_delta,
            "mean_distance_delta": self.mean_distance_delta,
            "overrides": dict(self.overrides),
            "diffs_truncated": self.diffs_truncated,
            "diffs": [diff.to_dict() for diff in self.diffs],
        }

    def summary(self) -> str:
        head = (
            f"replayed {self.decisions} decisions over {self.sessions} "
            f"session(s) from {self.trace}"
        )
        if self.skipped_sessions:
            head += f" ({self.skipped_sessions} session(s) skipped)"
        if self.bitwise_identical:
            return head + ": bitwise identical"
        deltas = ", ".join(
            f"{key}{delta:+d}"
            for key, delta in self.counter_deltas().items()
            if delta
        )
        lines = [
            head
            + f": {self.changed} changed ({self.flips} status flips)"
            + (f" [{deltas}]" if deltas else ""),
            f"  reserved delta {self.reserved_delta:+.6f}, "
            f"mean alternative-distance delta "
            f"{self.mean_distance_delta:+.6f}",
        ]
        return "\n".join(lines)


# ----------------------------------------------------------- event walking
class _Pairs:
    """Accumulates recorded/replayed decision pairs into report terms."""

    def __init__(self, max_diffs: int):
        self.max_diffs = max(0, int(max_diffs))
        self.decisions = 0
        self.identical = 0
        self.flips = 0
        self.diffs: "list[DecisionDiff]" = []
        self.truncated = False
        self.recorded_counts: "dict[str, int]" = {}
        self.replayed_counts: "dict[str, int]" = {}
        self.reserved_delta = 0.0
        self._distance_deltas: "list[float]" = []

    def add(self, session_id: str, source: str, recorded, replayed) -> None:
        self.decisions += 1
        for decision, counts in (
            (recorded, self.recorded_counts),
            (replayed, self.replayed_counts),
        ):
            status = _status_str(decision)
            if status is not None:
                counts[status] = counts.get(status, 0) + 1
        self.reserved_delta += (
            0.0 if replayed is None else replayed.workforce_reserved
        ) - (0.0 if recorded is None else recorded.workforce_reserved)
        recorded_distance = _distance(recorded)
        replayed_distance = _distance(replayed)
        if recorded_distance is not None and replayed_distance is not None:
            self._distance_deltas.append(replayed_distance - recorded_distance)
        if (
            recorded is not None
            and replayed is not None
            and recorded.comparison_key() == replayed.comparison_key()
        ):
            self.identical += 1
            return
        if _status_str(recorded) != _status_str(replayed):
            self.flips += 1
        if len(self.diffs) < self.max_diffs:
            request = recorded if recorded is not None else replayed
            self.diffs.append(
                DecisionDiff(
                    session_id=session_id,
                    request_id=_request_id(request),
                    source=source,
                    recorded_status=_status_str(recorded),
                    replayed_status=_status_str(replayed),
                    recorded_reserved=(
                        0.0 if recorded is None else recorded.workforce_reserved
                    ),
                    replayed_reserved=(
                        0.0 if replayed is None else replayed.workforce_reserved
                    ),
                    recorded_distance=recorded_distance,
                    replayed_distance=replayed_distance,
                )
            )
        else:
            self.truncated = True

    def add_submit(self, session_id, recorded, replayed) -> None:
        # submit_many answers positionally, one decision per request.
        replayed = list(replayed) if replayed is not None else []
        for index, decision in enumerate(recorded):
            other = replayed[index] if index < len(replayed) else None
            self.add(session_id, "submit", decision, other)
        for extra in replayed[len(recorded) :]:
            self.add(session_id, "submit", None, extra)

    def add_retry(self, session_id, recorded, replayed) -> None:
        # A drain's decisions are matched by request id: the queues may
        # hold different requests after an earlier admit/defer flip.
        recorded_by_id = {_request_id(d): d for d in recorded}
        replayed_by_id = {
            _request_id(d): d for d in (replayed or [])
        }
        for request_id, decision in recorded_by_id.items():
            self.add(
                session_id,
                "retry",
                decision,
                replayed_by_id.pop(request_id, None),
            )
        for decision in replayed_by_id.values():
            self.add(session_id, "retry", None, decision)

    def report(
        self,
        trace: str,
        sessions: int,
        skipped_sessions: int,
        events: int,
        overrides: "dict | None",
    ) -> ReplayReport:
        mean_distance_delta = (
            sum(self._distance_deltas) / len(self._distance_deltas)
            if self._distance_deltas
            else 0.0
        )
        return ReplayReport(
            trace=trace,
            sessions=sessions,
            skipped_sessions=skipped_sessions,
            events=events,
            decisions=self.decisions,
            identical=self.identical,
            flips=self.flips,
            diffs=tuple(self.diffs),
            diffs_truncated=self.truncated,
            recorded_counts=self.recorded_counts,
            replayed_counts=self.replayed_counts,
            reserved_delta=self.reserved_delta,
            mean_distance_delta=mean_distance_delta,
            overrides=dict(overrides or {}),
        )


class _ServiceDriver:
    """Re-drives one recorded session through a live ``EngineService``."""

    def __init__(self, service, session_id: str):
        self.service = service
        self.session_id = session_id

    def submit(self, requests):
        from repro.api.envelopes import SubmitBatchRequest

        response = self.service.submit_batch(
            SubmitBatchRequest(
                requests=tuple(requests), session_id=self.session_id
            )
        )
        return list(response.decisions)

    def retry(self):
        from repro.api.envelopes import RetryDeferredRequest

        response = self.service.retry_deferred(
            RetryDeferredRequest(session_id=self.session_id)
        )
        return list(response.decisions)

    def release(self, op: str, request_ids) -> None:
        from repro.api.envelopes import SessionOpRequest

        # A status flip may have left some recorded reservations never
        # admitted here — releasing those would be a typed error, and the
        # interesting signal (the flip) is already in the diff.
        active = self.service.session(self.session_id).active
        request_ids = [rid for rid in request_ids if rid in active]
        if not request_ids:
            return
        self.service.session_op(
            SessionOpRequest(
                op=op,
                session_id=self.session_id,
                request_ids=tuple(request_ids),
            )
        )

    def close(self) -> None:
        self.service.close_session(self.session_id)


class _SessionDriver:
    """Re-drives one recorded session on a bare ``EngineSession``."""

    def __init__(self, session):
        self.session = session

    def submit(self, requests):
        return self.session.submit_many(list(requests))

    def retry(self):
        return self.session.retry_deferred()

    def release(self, op: str, request_ids) -> None:
        release = self.session.complete if op == "complete" else self.session.revoke
        active = self.session.active
        for request_id in request_ids:
            if request_id in active:
                release(request_id)

    def close(self) -> None:
        pass


def _walk(events, open_driver, pairs: _Pairs) -> "tuple[int, int]":
    """Drive every session's events through its driver; returns
    ``(replayed sessions, skipped sessions)``.

    ``open_driver(event)`` answers a driver or ``None`` (session not
    replayable — unknown ensemble, out-of-scope fingerprint, or the
    open itself failed).  Any drive-time :class:`ReproError` pairs the
    event's recorded decisions with nothing instead of aborting the
    pass: the failure is itself a decision divergence.
    """
    drivers: "dict[str, object]" = {}
    skipped: "set[str]" = set()
    replayed = 0
    for event in events:
        if isinstance(event, SessionOpenEvent):
            if event.session_id in drivers or event.session_id in skipped:
                continue  # checkpoint recovery can restate an open
            driver = open_driver(event)
            if driver is None:
                skipped.add(event.session_id)
            else:
                drivers[event.session_id] = driver
                replayed += 1
        elif isinstance(event, SubmitEvent):
            driver = drivers.get(event.session_id)
            if driver is None:
                continue
            try:
                decisions = driver.submit(event.requests)
            except ReproError:
                decisions = None
            pairs.add_submit(event.session_id, event.decisions, decisions)
        elif isinstance(event, RetryEvent):
            driver = drivers.get(event.session_id)
            if driver is None:
                continue
            try:
                decisions = driver.retry()
            except ReproError:
                decisions = None
            pairs.add_retry(event.session_id, event.decisions, decisions)
        elif isinstance(event, ReleaseEvent):
            driver = drivers.get(event.session_id)
            if driver is None:
                continue
            try:
                driver.release(event.op, event.request_ids)
            except ReproError:
                pass
        elif isinstance(event, SessionCloseEvent):
            driver = drivers.pop(event.session_id, None)
            if driver is not None:
                try:
                    driver.close()
                except ReproError:
                    pass
    return replayed, len(skipped)


# ------------------------------------------------------------- entry points
def replay_trace(
    trace,
    overrides: "dict | None" = None,
    service=None,
    max_diffs: int = MAX_DIFFS,
) -> ReplayReport:
    """Re-drive a recorded trace through a real service; diff decisions.

    ``trace`` is a journal directory/file path or a prepared
    :class:`TraceWorkload`.  Every recorded ensemble is registered with
    ``service`` (a fresh private :class:`~repro.api.EngineService` when
    omitted), then each recorded session re-opens under its *recorded*
    spec with ``overrides`` applied field-by-field — so ``--solver
    adpar-epsilon`` reenacts exactly the recorded traffic under one
    changed knob.  With no overrides the pass must come back
    :attr:`~ReplayReport.bitwise_identical`.
    """
    from repro.api.service import EngineService
    from repro.api.wire import EnsembleRef

    if isinstance(trace, TraceWorkload):
        workload = trace
        events = list(workload.events)
    else:
        _, workload = load_trace(trace)
        events = list(workload.events)
    if service is None:
        service = EngineService()
    known: "set[str]" = set()

    def _register(ref) -> None:
        if ref.ensemble is not None:
            service.register_ensemble(ref.ensemble)
            known.add(ref.fingerprint)

    for event in events:
        if isinstance(event, EnsembleEvent):
            _register(event.ref)
        elif isinstance(event, CheckpointEvent):
            for ref in event.ensembles:
                _register(ref)

    pairs = _Pairs(max_diffs)

    def open_driver(event: SessionOpenEvent):
        if event.fingerprint not in known:
            return None
        spec = apply_overrides(event.spec, overrides)
        try:
            session_id = service.open_session(
                EnsembleRef.by_fingerprint(event.fingerprint), spec
            )
        except ReproError:
            return None
        return _ServiceDriver(service, session_id)

    replayed, skipped = _walk(events, open_driver, pairs)
    return pairs.report(
        trace=workload.trace,
        sessions=replayed,
        skipped_sessions=skipped,
        events=len(events),
        overrides=overrides,
    )


def reenact_on_engine(
    engine,
    workload: TraceWorkload,
    max_diffs: int = MAX_DIFFS,
) -> ReplayReport:
    """Re-drive a trace's primary-ensemble sessions on a built engine.

    The ``recorded-trace`` scenario path: ``engine`` is already
    configured by the scenario's :class:`~repro.api.wire.EngineSpec`
    (which may differ from every recorded spec — that *is* the
    experiment), so recorded specs are ignored and sessions on other
    ensembles are skipped.
    """
    pairs = _Pairs(max_diffs)

    def open_driver(event: SessionOpenEvent):
        if event.fingerprint != workload.fingerprint:
            return None
        return _SessionDriver(engine.open_session())

    replayed, skipped = _walk(workload.events, open_driver, pairs)
    return pairs.report(
        trace=workload.trace,
        sessions=replayed,
        skipped_sessions=skipped,
        events=len(workload.events),
        overrides=None,
    )
