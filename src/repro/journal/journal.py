"""The append-only decision journal: crash-safe JSONL segments + reader.

One :class:`DecisionJournal` owns a directory of ``journal-NNNNNN.jsonl``
segments.  :meth:`~DecisionJournal.append` stamps the event's ``seq``
under the journal lock and enqueues it; a dedicated write-behind thread
encodes queued events to JSON *outside* the lock and group-commits each
batch (write + flush) to the newest segment.  JSON encoding is by far
the dominant append cost, so moving it off the caller's thread keeps the
hot path (a service holding a session lock) to a stamp and a queue push.
Durability is bounded-lag: a flushed batch sits in the OS page cache
(the same trade as a Redis AOF between fsyncs), and the writer group-
commits after a short gather window (:attr:`DecisionJournal.GATHER_WINDOW_S`),
so a crash can cost at most the last window's worth of events —
:meth:`~DecisionJournal.close` blocks until everything queued is on
disk.  A segment past ``max_bytes`` rotates.  Crash-safe framing comes
from two rules rather than fsync ceremony:

* segments are **append-only and never reopened** — a restarted journal
  always starts a fresh segment, so the only line a crash can damage is
  the *last* line of a segment;
* the reader therefore tolerates (drops) an unparseable final line per
  segment and raises :class:`~repro.exceptions.JournalCorruptError` for
  anything else malformed.

Every event is stamped with a monotonically increasing ``seq`` that
survives restarts (the writer resumes past the highest recorded seq), so
checkpoint snapshots can name the exact journal position they fold in —
the consistency anchor recovery skips/applies tail events by.

Counters (events, bytes, checkpoints, restores, rotations, replay
decisions/flips) surface through :meth:`DecisionJournal.occupancy`, the
same plumbing shape as ``EngineCache.occupancy()``, and flow into the
``stats`` wire envelope when a journal is attached to the service.
"""

from __future__ import annotations

import json
import re
import threading
import time
from collections import deque
from dataclasses import replace
from pathlib import Path

from repro.exceptions import JournalCorruptError
from repro.journal.events import (
    CheckpointEvent,
    EnsembleEvent,
    event_from_dict,
    event_to_dict,
)

#: Segment naming: zero-padded so lexicographic order == journal order.
SEGMENT_RE = re.compile(r"^journal-(\d{6})\.jsonl$")


def journal_files(path) -> "list[Path]":
    """The journal segments under ``path`` (a directory or one file), in order."""
    path = Path(path)
    if path.is_file():
        return [path]
    if not path.is_dir():
        return []
    return sorted(p for p in path.iterdir() if SEGMENT_RE.match(p.name))


def read_events(path) -> list:
    """Every event recorded under ``path``, in journal order.

    ``path`` is a journal directory or a single segment file.  A torn
    final line in any segment (crash mid-append) is dropped; any other
    malformed line raises :class:`JournalCorruptError`.
    """
    events = []
    for file in journal_files(path):
        lines = file.read_text(encoding="utf-8").split("\n")
        for index, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                if all(not rest.strip() for rest in lines[index + 1 :]):
                    break  # torn tail: the crash interrupted this append
                raise JournalCorruptError(
                    f"{file.name}:{index + 1}: unparseable non-tail line "
                    f"({exc})"
                ) from exc
            events.append(event_from_dict(payload))
    return events


class DecisionJournal:
    """Append-only JSONL writer for service-level decision events.

    Thread-safe: one reentrant lock serializes seq stamping and queue
    pushes, so callers may append while holding their own (session)
    locks — the journal lock is a leaf and is never held while taking
    any other lock.  The expensive part of an append (JSON encoding,
    then the write + flush group commit) runs on the journal's own
    write-behind thread; queue order is journal order, so the recorded
    event sequence still mirrors the callers' lock-ordered appends.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.  A restarted journal
        scans it to resume the ``seq`` counter and starts a fresh
        segment (old segments are never appended to — the crash-safety
        framing contract).
    max_bytes:
        Rotation threshold per segment.
    checkpoint_every:
        How many events between checkpoints; the service consults
        :meth:`should_checkpoint` after journaled operations.
    max_queue:
        Backpressure bound on the write-behind queue: appenders block
        once this many events are waiting, so a stalled disk degrades
        to synchronous-append pacing instead of unbounded memory.
    """

    def __init__(
        self,
        directory,
        max_bytes: int = 16_000_000,
        checkpoint_every: int = 256,
        max_queue: int = 1024,
    ):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max(4096, int(max_bytes))
        self.checkpoint_every = max(1, int(checkpoint_every))
        self.max_queue = max(1, int(max_queue))
        existing = journal_files(self.directory)
        self._segment_index = (
            int(SEGMENT_RE.match(existing[-1].name).group(1)) + 1
            if existing
            else 1
        )
        self._seq = self._scan_last_seq(existing)
        self._fh = None
        self._bytes = 0
        self._lock = threading.RLock()
        self._cv = threading.Condition(self._lock)
        self._queue: "deque" = deque()
        self._closing = False
        self._since_checkpoint = 0
        self._seen_fingerprints: "set[str]" = set()
        self.counters = {
            "events": 0,
            "bytes": 0,
            "checkpoints": 0,
            "rotations": 0,
            "restores": 0,
            "replay_decisions": 0,
            "replay_flips": 0,
        }
        self._writer = threading.Thread(
            target=self._writer_loop, name="journal-writer", daemon=True
        )
        self._writer.start()

    @staticmethod
    def _scan_last_seq(segments: "list[Path]") -> int:
        # Newest segment backwards: the first segment with any readable
        # event names the resume point.  (A segment holding only a torn
        # line contributes nothing — fall through to the one before it.)
        for segment in reversed(segments):
            events = read_events(segment)
            if events:
                return max(event.seq for event in events)
        return 0

    # ------------------------------------------------------------- writing
    def _open_segment(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self.counters["rotations"] += 1
        path = self.directory / f"journal-{self._segment_index:06d}.jsonl"
        self._segment_index += 1
        self._fh = path.open("a", encoding="utf-8")
        self._bytes = 0

    @staticmethod
    def _encode(stamped) -> str:
        return json.dumps(event_to_dict(stamped), separators=(",", ":")) + "\n"

    def _write_lines(self, lines) -> None:
        """Write + flush encoded lines; caller holds the journal lock."""
        for line in lines:
            if self._fh is None or self._bytes >= self.max_bytes:
                self._open_segment()
            self._fh.write(line)
            self._bytes += len(line)
            self.counters["bytes"] += len(line)
        if lines and self._fh is not None:
            self._fh.flush()

    #: Group-commit gather window: after a burst's first event lands,
    #: the writer lingers this long so the rest of the burst joins the
    #: same encode + write + flush — per-event wakeups and flushes cost
    #: more than the lag is worth.  Bounds the crash-loss exposure.
    GATHER_WINDOW_S = 0.01
    #: Drain immediately once this many events are waiting, window or not.
    GATHER_MAX = 64

    def _writer_loop(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._closing:
                    self._cv.wait()
                deadline = time.monotonic() + self.GATHER_WINDOW_S
                while not self._closing and len(self._queue) < self.GATHER_MAX:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        break
                    self._cv.wait(remaining)
                batch = tuple(self._queue)
                self._queue.clear()
                self._cv.notify_all()  # free appenders blocked on max_queue
                if not batch:
                    return  # closing and fully drained
            # Encoding dominates append cost — do it outside the lock so
            # appenders (holding session locks) never wait on it.
            lines = [self._encode(event) for event in batch]
            try:
                with self._cv:
                    self._write_lines(lines)
            except OSError:
                # A dead disk must not strand appenders behind a full
                # queue forever: flip to closing so appends go inline
                # and surface I/O errors to their own callers.
                with self._cv:
                    self._closing = True
                    self._cv.notify_all()
                return

    def append(self, event) -> int:
        """Stamp (seq, ts) and enqueue one line for the write-behind
        thread; returns the seq.  Blocks only when ``max_queue`` events
        are already waiting (backpressure) — after :meth:`close` (or a
        writer-thread I/O failure) the append degrades to a synchronous
        inline write so ordering and durability still hold.
        """
        with self._cv:
            while len(self._queue) >= self.max_queue and not self._closing:
                self._cv.wait()
            seq = self._seq + 1
            stamped = replace(event, seq=seq, ts=time.time())
            self._seq = seq
            self.counters["events"] += 1
            self._since_checkpoint += 1
            if self._closing:
                pending = [*self._queue, stamped]
                self._queue.clear()
                self._write_lines([self._encode(e) for e in pending])
            else:
                self._queue.append(stamped)
                if len(self._queue) == 1:
                    # Empty→non-empty is the only transition the writer
                    # sleeps through; notifying on every append would
                    # just cut its gather window short.
                    self._cv.notify_all()
            return seq

    def ensure_ensemble(self, fingerprint: str, ensemble) -> None:
        """Journal an ensemble once per process (idempotent re-record).

        The dedup set is per-writer, not per-journal: a restarted
        process re-records ensembles it meets again, which recovery
        treats as idempotent re-registrations.
        """
        with self._lock:
            if fingerprint in self._seen_fingerprints:
                return
            from repro.api.wire import EnsembleRef

            self.append(EnsembleEvent(ref=EnsembleRef(fingerprint, ensemble)))
            self._seen_fingerprints.add(fingerprint)

    def should_checkpoint(self) -> bool:
        """True once ``checkpoint_every`` events accrued since the last."""
        return self._since_checkpoint >= self.checkpoint_every

    def write_checkpoint(self, sessions, ensembles) -> int:
        """Append a checkpoint event; resets the between-checkpoints count."""
        with self._lock:
            seq = self.append(
                CheckpointEvent(
                    sessions=tuple(sessions), ensembles=tuple(ensembles)
                )
            )
            self._since_checkpoint = 0
            self.counters["checkpoints"] += 1
            return seq

    # ------------------------------------------------------------ counters
    def note_restores(self, count: int) -> None:
        """Record sessions restored from this journal (recovery path)."""
        with self._lock:
            self.counters["restores"] += int(count)

    def note_replay(self, decisions: int, flips: int) -> None:
        """Record a replay pass's compared decisions and status flips."""
        with self._lock:
            self.counters["replay_decisions"] += int(decisions)
            self.counters["replay_flips"] += int(flips)

    def occupancy(self) -> dict:
        """Numeric counter block for the ``stats`` envelope (summable
        across cluster workers, like ``EngineCache.occupancy()``)."""
        with self._lock:
            out = dict(self.counters)
            out["segments"] = len(journal_files(self.directory))
            out["pending_checkpoint"] = self._since_checkpoint
            out["queued"] = len(self._queue)
            return out

    def close(self) -> None:
        """Drain the write-behind queue to disk, then close the segment."""
        with self._cv:
            self._closing = True
            self._cv.notify_all()
        writer = self._writer
        if writer is not None:
            writer.join()
            self._writer = None
        with self._cv:
            # Anything still queued means the writer bailed on an I/O
            # error — give those events one last synchronous chance.
            pending = tuple(self._queue)
            self._queue.clear()
            self._write_lines([self._encode(e) for e in pending])
            if self._fh is not None:
                self._fh.close()
                self._fh = None
