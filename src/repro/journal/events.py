"""Typed journal events and their JSONL codecs.

One frozen dataclass per event the decision journal records, plus an
``event_to_dict``/``event_from_dict`` pair following the
:mod:`repro.api.wire` codec contract (JSON-native output, lossless
round-trip, typed failure).  Identity payloads — specs, ensembles,
session snapshots — cross the journal boundary through the existing
wire codecs, so checkpoints stay greppable in the wire vocabulary and
decode through the same decoders.  The *high-frequency* payloads are
deliberately more compact, because their encoding cost is the journal's
whole hot-path tax: submit requests use a positional
``[quality, cost, latency]`` triple with defaults omitted
(:func:`journal_request_to_dict`), and decisions — recomputable, since
recovery re-drives the recorded requests — shrink to
:class:`DecisionRecord`, just the ``comparison_key`` surface the replay
differ consumes, instead of full wire decisions that embed their
request twice over plus the ADPaR working set.

Framing: the journal writer stamps each event with its monotonically
increasing journal position ``seq`` and a wall-clock ``ts``; both
round-trip verbatim.  Checkpoint consistency is reasoned about entirely
in ``seq``: a :class:`SessionCheckpoint` records the ``seq`` of the last
event folded into its snapshot, so recovery can skip exactly the events
a snapshot already contains — even events that were appended after the
snapshot was taken but landed *before* the checkpoint line (checkpoints
are written outside session locks; see ``EngineService``).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.api.wire import (
    EngineSpec,
    EnsembleRef,
    as_float,
    as_int,
    as_list,
    as_str,
    deployment_request_to_dict,
    deployment_requests_from_list,
    expect_mapping,
    guard,
    require,
    stream_decision_from_dict,
    stream_decision_to_dict,
)
from repro.core.params import TriParams
from repro.core.request import DeploymentRequest
from repro.core.streaming import StreamStatus
from repro.engine.session import SessionState
from repro.exceptions import ApiError

_WHAT = "journal event"


@dataclass(frozen=True)
class EnsembleEvent:
    """An ensemble became addressable (always precedes its sessions)."""

    ref: EnsembleRef
    seq: int = 0
    ts: float = 0.0


@dataclass(frozen=True)
class SessionOpenEvent:
    """A streaming session opened under one (fingerprint, spec) identity."""

    session_id: str
    fingerprint: str
    spec: EngineSpec
    seq: int = 0
    ts: float = 0.0


@dataclass(frozen=True)
class SessionCloseEvent:
    """A session closed; its reservations are gone."""

    session_id: str
    seq: int = 0
    ts: float = 0.0


@dataclass(frozen=True)
class AlternativeRecord:
    """The comparison surface of an ADPaR alternative — exactly the
    triple ``StreamDecision.comparison_key`` folds in."""

    params: TriParams
    distance: float
    indices: "tuple[int, ...]" = ()


@dataclass(frozen=True)
class DecisionRecord:
    """One recorded decision, journal-compact.

    Decisions are recomputable — recovery re-drives the recorded
    requests through the real engine — so the journal keeps only the
    *comparison surface*: the fields ``StreamDecision.comparison_key``
    pins, which is also everything the replay differ reports (status,
    reserved workforce, alternative distance).  This is the one
    deliberate departure from encode-as-the-wire-does: a full wire
    decision embeds its request (already on the event) and the ADPaR
    working set (original params, relaxation, squared distance —
    derivable or duplicated), which roughly tripled journal lines for
    bytes no reader consumed.
    """

    request_id: str
    status: StreamStatus
    strategy_names: "tuple[str, ...]" = ()
    workforce_reserved: float = 0.0
    alternative: "AlternativeRecord | None" = None

    @classmethod
    def of(cls, decision) -> "DecisionRecord":
        """The record for a :class:`StreamDecision` (records pass through)."""
        if isinstance(decision, cls):
            return decision
        alternative = decision.alternative
        return cls(
            request_id=decision.request.request_id,
            status=decision.status,
            strategy_names=tuple(decision.strategy_names),
            workforce_reserved=decision.workforce_reserved,
            alternative=(
                None
                if alternative is None
                else AlternativeRecord(
                    params=alternative.alternative,
                    distance=alternative.distance,
                    indices=tuple(alternative.strategy_indices),
                )
            ),
        )

    def comparison_key(self) -> tuple:
        """Identical shape to ``StreamDecision.comparison_key`` so a
        recorded record compares exactly against a replayed decision."""
        alternative = (
            None
            if self.alternative is None
            else (
                self.alternative.params,
                self.alternative.distance,
                self.alternative.indices,
            )
        )
        return (
            self.request_id,
            self.status,
            self.strategy_names,
            self.workforce_reserved,
            alternative,
        )


def _as_records(decisions) -> "tuple[DecisionRecord, ...]":
    return tuple(DecisionRecord.of(d) for d in decisions)


@dataclass(frozen=True)
class SubmitEvent:
    """One admission burst: the requests and the decisions they drew.

    ``decisions`` accepts :class:`StreamDecision` values (the service
    hands its responses straight over) and normalizes them to
    :class:`DecisionRecord` — event equality and the JSONL round-trip
    are defined over records.
    """

    session_id: str
    requests: "tuple[DeploymentRequest, ...]"
    decisions: "tuple[DecisionRecord, ...]"
    seq: int = 0
    ts: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "decisions", _as_records(self.decisions))


@dataclass(frozen=True)
class RetryEvent:
    """A non-empty deferred-queue drain and the decisions it produced."""

    session_id: str
    decisions: "tuple[DecisionRecord, ...]"
    seq: int = 0
    ts: float = 0.0

    def __post_init__(self):
        object.__setattr__(self, "decisions", _as_records(self.decisions))


@dataclass(frozen=True)
class ReleaseEvent:
    """A complete/revoke batch freeing reserved workforce."""

    op: str
    session_id: str
    request_ids: "tuple[str, ...]"
    released: float = 0.0
    seq: int = 0
    ts: float = 0.0


@dataclass(frozen=True)
class SessionCheckpoint:
    """One live session inside a checkpoint: identity + ledger snapshot.

    ``seq`` is the journal position of the last event folded into
    ``state`` — recovery applies only tail events with a greater seq.
    """

    session_id: str
    fingerprint: str
    spec: EngineSpec
    state: SessionState
    seq: int = 0


@dataclass(frozen=True)
class CheckpointEvent:
    """Periodic snapshot of every live session (+ their ensembles inline).

    Self-describing: the inline ensembles make checkpoint + tail
    sufficient to rebuild the checkpointed sessions even if earlier
    segments' ensemble events were rotated far behind.
    """

    sessions: "tuple[SessionCheckpoint, ...]" = ()
    ensembles: "tuple[EnsembleRef, ...]" = ()
    seq: int = 0
    ts: float = 0.0


# ------------------------------------------------------------ SessionState
def session_state_to_dict(state: SessionState) -> dict:
    return {
        "availability": state.availability,
        "used": state.used,
        "deferred_floor": state.deferred_floor,
        "admitted": state.admitted,
        "revoked": state.revoked,
        "completed": state.completed,
        "reserved": [stream_decision_to_dict(d) for d in state.reserved],
        "deferred": [deployment_request_to_dict(r) for r in state.deferred],
    }


@guard("SessionState")
def session_state_from_dict(payload) -> SessionState:
    what = "SessionState"
    expect_mapping(payload, what)
    floor = payload.get("deferred_floor")
    return SessionState(
        availability=as_float(
            require(payload, "availability", what), "availability"
        ),
        used=as_float(require(payload, "used", what), "used"),
        deferred_floor=None if floor is None else as_float(floor, "deferred_floor"),
        admitted=as_int(payload.get("admitted", 0), "admitted"),
        revoked=as_int(payload.get("revoked", 0), "revoked"),
        completed=as_int(payload.get("completed", 0), "completed"),
        reserved=tuple(
            stream_decision_from_dict(item)
            for item in as_list(payload.get("reserved", []), "reserved")
        ),
        deferred=deployment_requests_from_list(
            payload.get("deferred", []), "deferred"
        ),
    )


# ----------------------------------------------------------------- encoders
def _base(event, kind: str) -> dict:
    return {"event": kind, "seq": event.seq, "ts": event.ts}


def _ensemble_to_dict(event: EnsembleEvent) -> dict:
    return {**_base(event, "ensemble"), "ensemble": event.ref.to_dict()}


def _session_open_to_dict(event: SessionOpenEvent) -> dict:
    return {
        **_base(event, "session_open"),
        "session_id": event.session_id,
        "fingerprint": event.fingerprint,
        "spec": event.spec.to_dict(),
    }


def _session_close_to_dict(event: SessionCloseEvent) -> dict:
    return {**_base(event, "session_close"), "session_id": event.session_id}


def _triple_to_list(params: TriParams) -> list:
    return [params.quality, params.cost, params.latency]


def _triple_from_list(value, what: str) -> TriParams:
    triple = as_list(value, what)
    if len(triple) != 3:
        raise ApiError(
            f"{what} must be a [quality, cost, latency] triple, got "
            f"{len(triple)} value(s)",
            code="invalid_payload",
        )
    return TriParams(*(as_float(v, f"{what}[]") for v in triple))


def journal_request_to_dict(request: DeploymentRequest) -> dict:
    """A submit-stream request in journal form: positional params
    triple, defaults omitted — these dominate journal bytes, and the
    full wire spelling spent most of a line re-stating field names."""
    out = {
        "id": request.request_id,
        "params": _triple_to_list(request.params),
        "k": request.k,
    }
    if request.task_type != "generic":
        out["task_type"] = request.task_type
    if request.payoff is not None:
        out["payoff"] = request.payoff
    return out


@guard("journal request")
def journal_request_from_dict(payload) -> DeploymentRequest:
    what = "journal request"
    expect_mapping(payload, what)
    payoff = payload.get("payoff")
    return DeploymentRequest(
        request_id=as_str(require(payload, "id", what), "id"),
        params=_triple_from_list(require(payload, "params", what), "params"),
        k=as_int(payload.get("k", 1), "k"),
        task_type=as_str(payload.get("task_type", "generic"), "task_type"),
        payoff=None if payoff is None else as_float(payoff, "payoff"),
    )


def decision_record_to_dict(record: DecisionRecord) -> dict:
    out = {"id": record.request_id, "status": record.status.value}
    if record.strategy_names:
        out["names"] = list(record.strategy_names)
    if record.workforce_reserved:
        out["reserved"] = record.workforce_reserved
    alternative = record.alternative
    if alternative is not None:
        out["alt"] = [
            _triple_to_list(alternative.params),
            alternative.distance,
            list(alternative.indices),
        ]
    return out


@guard("DecisionRecord")
def decision_record_from_dict(payload) -> DecisionRecord:
    what = "DecisionRecord"
    expect_mapping(payload, what)
    status_value = as_str(require(payload, "status", what), "status")
    try:
        status = StreamStatus(status_value)
    except ValueError:
        raise ApiError(
            f"unknown decision status {status_value!r}",
            code="invalid_payload",
        ) from None
    alternative = payload.get("alt")
    if alternative is not None:
        triple = as_list(alternative, "alt")
        if len(triple) != 3:
            raise ApiError(
                "alt must be [[quality, cost, latency], distance, "
                f"indices], got {len(triple)} element(s)",
                code="invalid_payload",
            )
        alternative = AlternativeRecord(
            params=_triple_from_list(triple[0], "alt params"),
            distance=as_float(triple[1], "alt distance"),
            indices=tuple(
                as_int(v, "alt indices[]")
                for v in as_list(triple[2], "alt indices")
            ),
        )
    return DecisionRecord(
        request_id=as_str(require(payload, "id", what), "id"),
        status=status,
        strategy_names=tuple(
            as_str(v, "names[]")
            for v in as_list(payload.get("names", []), "names")
        ),
        workforce_reserved=as_float(payload.get("reserved", 0.0), "reserved"),
        alternative=alternative,
    )


def _submit_to_dict(event: SubmitEvent) -> dict:
    return {
        **_base(event, "submit"),
        "session_id": event.session_id,
        "requests": [journal_request_to_dict(r) for r in event.requests],
        "decisions": [decision_record_to_dict(d) for d in event.decisions],
    }


def _retry_to_dict(event: RetryEvent) -> dict:
    return {
        **_base(event, "retry"),
        "session_id": event.session_id,
        "decisions": [decision_record_to_dict(d) for d in event.decisions],
    }


def _release_to_dict(event: ReleaseEvent) -> dict:
    return {
        **_base(event, "release"),
        "op": event.op,
        "session_id": event.session_id,
        "request_ids": list(event.request_ids),
        "released": event.released,
    }


def _checkpoint_to_dict(event: CheckpointEvent) -> dict:
    return {
        **_base(event, "checkpoint"),
        "sessions": [
            {
                "session_id": entry.session_id,
                "fingerprint": entry.fingerprint,
                "spec": entry.spec.to_dict(),
                "state": session_state_to_dict(entry.state),
                "seq": entry.seq,
            }
            for entry in event.sessions
        ],
        "ensembles": [ref.to_dict() for ref in event.ensembles],
    }


_ENCODERS = {
    EnsembleEvent: _ensemble_to_dict,
    SessionOpenEvent: _session_open_to_dict,
    SessionCloseEvent: _session_close_to_dict,
    SubmitEvent: _submit_to_dict,
    RetryEvent: _retry_to_dict,
    ReleaseEvent: _release_to_dict,
    CheckpointEvent: _checkpoint_to_dict,
}


def event_to_dict(event) -> dict:
    """One journal event as a JSON-native dict (a JSONL line's payload)."""
    encoder = _ENCODERS.get(type(event))
    if encoder is None:
        raise ApiError(
            f"unsupported journal event {type(event).__name__}",
            code="invalid_argument",
        )
    return encoder(event)


# ----------------------------------------------------------------- decoders
def _session_id(payload) -> str:
    return as_str(require(payload, "session_id", _WHAT), "session_id")


def _decisions(payload) -> tuple:
    return tuple(
        decision_record_from_dict(item)
        for item in as_list(require(payload, "decisions", _WHAT), "decisions")
    )


def _ensemble_from_dict(payload, seq, ts) -> EnsembleEvent:
    return EnsembleEvent(
        ref=EnsembleRef.from_dict(require(payload, "ensemble", _WHAT)),
        seq=seq,
        ts=ts,
    )


def _session_open_from_dict(payload, seq, ts) -> SessionOpenEvent:
    return SessionOpenEvent(
        session_id=_session_id(payload),
        fingerprint=as_str(
            require(payload, "fingerprint", _WHAT), "fingerprint"
        ),
        spec=EngineSpec.from_dict(require(payload, "spec", _WHAT)),
        seq=seq,
        ts=ts,
    )


def _session_close_from_dict(payload, seq, ts) -> SessionCloseEvent:
    return SessionCloseEvent(session_id=_session_id(payload), seq=seq, ts=ts)


def _submit_from_dict(payload, seq, ts) -> SubmitEvent:
    return SubmitEvent(
        session_id=_session_id(payload),
        requests=tuple(
            journal_request_from_dict(item)
            for item in as_list(require(payload, "requests", _WHAT), "requests")
        ),
        decisions=_decisions(payload),
        seq=seq,
        ts=ts,
    )


def _retry_from_dict(payload, seq, ts) -> RetryEvent:
    return RetryEvent(
        session_id=_session_id(payload),
        decisions=_decisions(payload),
        seq=seq,
        ts=ts,
    )


def _release_from_dict(payload, seq, ts) -> ReleaseEvent:
    op = as_str(require(payload, "op", _WHAT), "op")
    if op not in ("complete", "revoke"):
        raise ApiError(
            f"release op must be 'complete' or 'revoke', got {op!r}",
            code="invalid_payload",
        )
    return ReleaseEvent(
        op=op,
        session_id=_session_id(payload),
        request_ids=tuple(
            as_str(item, "request_ids[]")
            for item in as_list(
                require(payload, "request_ids", _WHAT), "request_ids"
            )
        ),
        released=as_float(payload.get("released", 0.0), "released"),
        seq=seq,
        ts=ts,
    )


def _session_checkpoint_from_dict(payload) -> SessionCheckpoint:
    what = "SessionCheckpoint"
    expect_mapping(payload, what)
    return SessionCheckpoint(
        session_id=as_str(require(payload, "session_id", what), "session_id"),
        fingerprint=as_str(
            require(payload, "fingerprint", what), "fingerprint"
        ),
        spec=EngineSpec.from_dict(require(payload, "spec", what)),
        state=session_state_from_dict(require(payload, "state", what)),
        seq=as_int(payload.get("seq", 0), "seq"),
    )


def _checkpoint_from_dict(payload, seq, ts) -> CheckpointEvent:
    return CheckpointEvent(
        sessions=tuple(
            _session_checkpoint_from_dict(item)
            for item in as_list(payload.get("sessions", []), "sessions")
        ),
        ensembles=tuple(
            EnsembleRef.from_dict(item)
            for item in as_list(payload.get("ensembles", []), "ensembles")
        ),
        seq=seq,
        ts=ts,
    )


_DECODERS = {
    "ensemble": _ensemble_from_dict,
    "session_open": _session_open_from_dict,
    "session_close": _session_close_from_dict,
    "submit": _submit_from_dict,
    "retry": _retry_from_dict,
    "release": _release_from_dict,
    "checkpoint": _checkpoint_from_dict,
}


@guard(_WHAT)
def event_from_dict(payload):
    """Decode one journal line's payload back into its typed event."""
    expect_mapping(payload, _WHAT)
    kind = as_str(require(payload, "event", _WHAT), "event")
    decoder = _DECODERS.get(kind)
    if decoder is None:
        raise ApiError(
            f"unknown journal event kind {kind!r}", code="invalid_payload"
        )
    seq = as_int(payload.get("seq", 0), "seq")
    ts = as_float(payload.get("ts", 0.0), "ts")
    return decoder(payload, seq, ts)
