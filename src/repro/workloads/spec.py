"""The declarative ``WorkloadSpec`` family — workloads as data.

A workload used to be imperative code: every fig-runner, example and CLI
subcommand hand-wired ``generate_strategy_ensemble`` + ``generate_requests``
calls around its own seeds.  This module turns that construction into
frozen, serializable specs that compose:

* :class:`EnsembleSpec` — how many strategies, drawn from which
  (pluggable, see :func:`~repro.workloads.generators.register_distribution`)
  dimension-value distribution.
* :class:`RequestBatchSpec` — how many deployment requests, with which
  parameter ranges and ``k``.
* :class:`ArrivalSpec` — how a stream of requests arrives: ``steady``
  micro-bursts, ``burst`` flash crowds, ``diurnal`` load curves, or
  ``adversarial`` hardest-first ordering.
* :class:`ScenarioSpec` — the composition: a kind (``batch`` / ``stream``
  / ``adpar``), the sub-specs above, engine/solver knobs (an
  :class:`~repro.api.wire.EngineSpec`), and one seed from which
  :meth:`ScenarioSpec.build` materializes everything bit-for-bit
  deterministically.

Every spec has a lossless JSON codec in :mod:`repro.api.wire`, so a
``repro serve`` client can describe a 10k-strategy workload in a few
hundred bytes and let the server materialize it (the ``simulate``
envelope).  Named spec families live in the
:class:`~repro.workloads.registry.ScenarioRegistry`.

Sweep helpers (:meth:`ScenarioSpec.with_` and the checked
:func:`replace_spec`) reject unknown field names with a typed
:class:`~repro.exceptions.InvalidSpecError` — mapped to the stable
``invalid_spec`` service error code — instead of the bare ``TypeError``
``dataclasses.replace`` would leak.
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field, fields, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.params import TriParams
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.exceptions import InvalidSpecError
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.workloads.generators import (
    generate_adpar_points,
    generate_requests,
    generate_strategy_ensemble,
    hard_request_for,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (wire imports us)
    from repro.api.wire import EngineSpec

#: The scenario kinds :meth:`ScenarioSpec.build` understands.  ``trace``
#: replays a recorded decision journal (``trace_path``) instead of
#: generating synthetic requests.
SCENARIO_KINDS = ("batch", "stream", "adpar", "trace")

#: The arrival processes :class:`ArrivalSpec` models.
ARRIVAL_PROCESSES = ("steady", "burst", "diurnal", "adversarial")


def replace_spec(spec, **overrides):
    """``dataclasses.replace`` with a typed error for unknown fields.

    The sweep helper every spec's ``with_`` routes through: an override
    naming a field the spec lacks raises :class:`InvalidSpecError`
    (stable ``invalid_spec`` wire code) instead of a bare ``TypeError``
    that would surface as a 500 through ``repro serve``.
    """
    known = {f.name for f in fields(spec)}
    unknown = sorted(set(overrides) - known)
    if unknown:
        raise InvalidSpecError(
            f"unknown {type(spec).__name__} field(s) "
            f"{', '.join(repr(name) for name in unknown)}; "
            f"known fields: {', '.join(sorted(known))}"
        )
    try:
        return replace(spec, **overrides)
    except (TypeError, ValueError) as exc:
        raise InvalidSpecError(
            f"invalid {type(spec).__name__} override: {exc}"
        ) from exc


def _check_int(name: str, value) -> None:
    """Typed integer check (bool is not an int here; numpy ints are)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise InvalidSpecError(
            f"{name} must be an integer, got {type(value).__name__}"
        )


def _check_number(name: str, value) -> None:
    if isinstance(value, bool) or not isinstance(
        value, (int, float, np.integer, np.floating)
    ):
        raise InvalidSpecError(
            f"{name} must be a number, got {type(value).__name__}"
        )


def _check_str(name: str, value) -> None:
    if not isinstance(value, str):
        raise InvalidSpecError(
            f"{name} must be a string, got {type(value).__name__}"
        )


def _canonical_options(options) -> str:
    """Distribution options canonicalized to one hashable JSON string.

    ``""`` means no options.  Canonical form (sorted keys, no spaces)
    makes spec equality/hashing independent of dict insertion order, and
    keeps frozen specs hashable while still carrying nested structures
    (e.g. mixture component lists).
    """
    if options is None:
        return ""
    if isinstance(options, str):
        if not options:
            return ""
        try:
            options = json.loads(options)
        except json.JSONDecodeError as exc:
            raise InvalidSpecError(
                f"distribution options must be a JSON object: {exc}"
            ) from exc
    if not isinstance(options, dict):
        raise InvalidSpecError(
            "distribution options must be a mapping, got "
            f"{type(options).__name__}"
        )
    if not options:
        return ""
    try:
        return json.dumps(options, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise InvalidSpecError(
            f"distribution options must be JSON-serializable: {exc}"
        ) from exc


@dataclass(frozen=True)
class EnsembleSpec:
    """One strategy ensemble, declaratively: size + dimension distribution.

    ``options`` accepts a mapping at construction time and is stored as
    its canonical JSON string (``""`` = none), so the spec stays frozen,
    hashable, and equality-stable across JSON round trips.
    """

    n_strategies: int = 10_000
    distribution: str = "uniform"
    options: str = ""

    def __post_init__(self):
        object.__setattr__(self, "options", _canonical_options(self.options))
        _check_int("n_strategies", self.n_strategies)
        _check_str("distribution", self.distribution)
        if self.n_strategies < 1:
            raise InvalidSpecError("n_strategies must be >= 1")

    def options_dict(self) -> "dict | None":
        """The options mapping (``None`` when there are none)."""
        return json.loads(self.options) if self.options else None

    def with_(self, **overrides) -> "EnsembleSpec":
        return replace_spec(self, **overrides)

    def build(self, rng=None) -> StrategyEnsemble:
        """Materialize the ensemble (linear α/β models) from ``rng``."""
        return generate_strategy_ensemble(
            self.n_strategies,
            self.distribution,
            ensure_rng(rng),
            options=self.options_dict(),
        )

    def build_points(self, rng=None) -> list[TriParams]:
        """Materialize fixed parameter points (the ADPaR setting)."""
        return generate_adpar_points(
            self.n_strategies,
            self.distribution,
            ensure_rng(rng),
            options=self.options_dict(),
        )


@dataclass(frozen=True)
class RequestBatchSpec:
    """One batch (or stream) of deployment requests, declaratively."""

    m_requests: int = 10
    k: int = 10
    low: float = 0.625
    high: float = 1.0
    task_type: str = "generic"
    quality_offset: float = 0.25
    prefix: str = "d"

    def __post_init__(self):
        _check_int("m_requests", self.m_requests)
        _check_int("k", self.k)
        _check_number("low", self.low)
        _check_number("high", self.high)
        _check_number("quality_offset", self.quality_offset)
        _check_str("task_type", self.task_type)
        _check_str("prefix", self.prefix)
        if self.m_requests < 1:
            raise InvalidSpecError("m_requests must be >= 1")
        if self.k < 1:
            raise InvalidSpecError("k must be >= 1")

    def with_(self, **overrides) -> "RequestBatchSpec":
        return replace_spec(self, **overrides)

    def build(self, rng=None) -> list[DeploymentRequest]:
        """Materialize the request batch from ``rng``."""
        return generate_requests(
            self.m_requests,
            self.k,
            ensure_rng(rng),
            low=self.low,
            high=self.high,
            task_type=self.task_type,
            quality_offset=self.quality_offset,
            prefix=self.prefix,
        )


@dataclass(frozen=True)
class ArrivalSpec:
    """How a stream of requests reaches the admission loop.

    ``schedule`` turns an arrival count into deterministic micro-burst
    sizes; ``order`` decides the request ordering.  Processes:

    ``steady``
        Constant ``burst_size`` micro-bursts (the seed behaviour).
    ``burst``
        Every ``spike_every``-th burst is a flash crowd of
        ``spike_factor × burst_size`` arrivals.
    ``diurnal``
        Burst sizes follow one sinusoidal load curve per
        ``period_bursts`` bursts, swinging ``±amplitude``.
    ``adversarial``
        Steady bursts, but the hardest requests (tight budgets, high
        quality demands) arrive first, front-loading ledger pressure.
    """

    process: str = "steady"
    burst_size: int = 64
    hold_bursts: int = 2
    spike_every: int = 8
    spike_factor: float = 4.0
    period_bursts: int = 12
    amplitude: float = 0.75

    def __post_init__(self):
        if self.process not in ARRIVAL_PROCESSES:
            raise InvalidSpecError(
                f"process must be one of {ARRIVAL_PROCESSES}, "
                f"got {self.process!r}"
            )
        _check_int("burst_size", self.burst_size)
        _check_int("hold_bursts", self.hold_bursts)
        _check_int("spike_every", self.spike_every)
        _check_int("period_bursts", self.period_bursts)
        _check_number("spike_factor", self.spike_factor)
        _check_number("amplitude", self.amplitude)
        if self.burst_size < 1:
            raise InvalidSpecError("burst_size must be >= 1")
        if self.hold_bursts < 1:
            raise InvalidSpecError("hold_bursts must be >= 1")
        if self.spike_every < 2:
            raise InvalidSpecError("spike_every must be >= 2")
        if self.spike_factor < 1.0:
            raise InvalidSpecError("spike_factor must be >= 1")
        if self.period_bursts < 2:
            raise InvalidSpecError("period_bursts must be >= 2")
        if not 0.0 <= self.amplitude < 1.0:
            raise InvalidSpecError("amplitude must be in [0, 1)")

    def with_(self, **overrides) -> "ArrivalSpec":
        return replace_spec(self, **overrides)

    def schedule(self, arrivals: int) -> list[int]:
        """Deterministic micro-burst sizes summing to ``arrivals``."""
        if arrivals < 1:
            raise InvalidSpecError("arrivals must be >= 1")
        sizes: list[int] = []
        total = 0
        index = 0
        while total < arrivals:
            size = self.burst_size
            if self.process == "burst" and (index + 1) % self.spike_every == 0:
                size = max(1, int(round(self.burst_size * self.spike_factor)))
            elif self.process == "diurnal":
                swing = self.amplitude * math.sin(
                    2.0 * math.pi * index / self.period_bursts
                )
                size = max(1, int(round(self.burst_size * (1.0 + swing))))
            size = min(size, arrivals - total)
            sizes.append(size)
            total += size
            index += 1
        return sizes

    def order(self, requests: list) -> list:
        """The arrival ordering (``adversarial`` sorts hardest-first)."""
        if self.process != "adversarial":
            return list(requests)
        # Hardest = tight cost/latency budgets with a demanding quality
        # floor; the stable sort keeps equally-hard requests in stream
        # order, so the schedule stays deterministic.
        return sorted(
            requests,
            key=lambda r: r.params.cost + r.params.latency - r.params.quality,
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, serializable workload scenario.

    Composes the ensemble/requests/arrival specs with the engine
    configuration (:class:`~repro.api.wire.EngineSpec`) and a single
    seed.  :meth:`build` is bit-for-bit deterministic: two equal specs
    materialize identical ensembles and requests.
    """

    kind: str = "batch"
    ensemble: EnsembleSpec = field(default_factory=EnsembleSpec)
    requests: RequestBatchSpec = field(default_factory=RequestBatchSpec)
    seed: int = 7
    name: str = ""
    description: str = ""
    arrival: "ArrivalSpec | None" = None
    engine: "EngineSpec | None" = None
    tightness: float = 0.15
    trace_path: str = ""

    def __post_init__(self):
        if self.kind not in SCENARIO_KINDS:
            raise InvalidSpecError(
                f"kind must be one of {SCENARIO_KINDS}, got {self.kind!r}"
            )
        # Composite fields are validated here so a bad override (e.g.
        # ``--set ensemble=5`` over the wire) answers the typed
        # invalid_spec error instead of an AttributeError deep in build.
        if not isinstance(self.ensemble, EnsembleSpec):
            raise InvalidSpecError(
                "ensemble must be an EnsembleSpec, got "
                f"{type(self.ensemble).__name__}"
            )
        if not isinstance(self.requests, RequestBatchSpec):
            raise InvalidSpecError(
                "requests must be a RequestBatchSpec, got "
                f"{type(self.requests).__name__}"
            )
        if self.arrival is not None and not isinstance(self.arrival, ArrivalSpec):
            raise InvalidSpecError(
                f"arrival must be an ArrivalSpec, got "
                f"{type(self.arrival).__name__}"
            )
        if self.engine is not None:
            from repro.api.wire import EngineSpec

            if not isinstance(self.engine, EngineSpec):
                raise InvalidSpecError(
                    f"engine must be an EngineSpec, got "
                    f"{type(self.engine).__name__}"
                )
        _check_int("seed", self.seed)
        _check_number("tightness", self.tightness)
        if not 0.0 <= self.tightness <= 1.0:
            raise InvalidSpecError("tightness must be in [0, 1]")
        _check_str("trace_path", self.trace_path)

    # ------------------------------------------------------------ overrides
    #: Flat override aliases ``with_`` routes into sub-specs, so sweeps
    #: read like the legacy scenarios: ``spec.with_(n_strategies=500,
    #: availability=0.3, burst_size=128)``.
    _ENSEMBLE_KEYS = frozenset(("n_strategies", "distribution"))
    _REQUEST_KEYS = frozenset(
        ("m_requests", "k", "low", "high", "task_type", "quality_offset", "prefix")
    )
    _ARRIVAL_KEYS = frozenset(
        (
            "process",
            "burst_size",
            "hold_bursts",
            "spike_every",
            "spike_factor",
            "period_bursts",
            "amplitude",
        )
    )
    _ENGINE_KEYS = frozenset(
        (
            "availability",
            "objective",
            "aggregation",
            "workforce_mode",
            "eligibility",
            "planner",
            "planner_options",
            "solver",
            "solver_options",
        )
    )

    def with_(self, **overrides) -> "ScenarioSpec":
        """Copy with overrides; flat aliases reach into the sub-specs.

        Unknown field names raise :class:`InvalidSpecError` — the whole
        override is rejected, nothing is partially applied.
        """
        own_fields = {f.name for f in fields(self)}
        own: dict = {}
        ensemble: dict = {}
        requests: dict = {}
        arrival: dict = {}
        engine: dict = {}
        unknown: list[str] = []
        for key, value in overrides.items():
            if key in own_fields:
                own[key] = value
            elif key in self._ENSEMBLE_KEYS:
                ensemble[key] = value
            elif key == "distribution_options":
                ensemble["options"] = value
            elif key in self._REQUEST_KEYS:
                requests[key] = value
            elif key in self._ARRIVAL_KEYS:
                arrival[key] = value
            elif key in self._ENGINE_KEYS:
                engine[key] = value
            else:
                unknown.append(key)
        if unknown:
            known = sorted(
                own_fields
                | self._ENSEMBLE_KEYS
                | {"distribution_options"}
                | self._REQUEST_KEYS
                | self._ARRIVAL_KEYS
                | self._ENGINE_KEYS
            )
            raise InvalidSpecError(
                f"unknown ScenarioSpec field(s) "
                f"{', '.join(repr(name) for name in sorted(unknown))}; "
                f"known fields and aliases: {', '.join(known)}"
            )
        for sub_name, aliases in (
            ("ensemble", ensemble),
            ("requests", requests),
            ("arrival", arrival),
            ("engine", engine),
        ):
            if aliases and sub_name in own:
                raise InvalidSpecError(
                    f"override {sub_name!r} either as a whole spec or via "
                    f"its flat aliases ({', '.join(sorted(aliases))}), "
                    "not both"
                )
        if ensemble:
            own["ensemble"] = self.ensemble.with_(**ensemble)
        if requests:
            own["requests"] = self.requests.with_(**requests)
        if arrival:
            base = self.arrival if self.arrival is not None else ArrivalSpec()
            own["arrival"] = base.with_(**arrival)
        if engine:
            own["engine"] = self._engine_with(engine)
        return replace_spec(self, **own) if own else self

    def _engine_with(self, overrides: dict) -> "EngineSpec":
        from repro.api.wire import EngineSpec

        if self.engine is not None:
            try:
                return replace(self.engine, **overrides)
            except (TypeError, ValueError) as exc:  # pragma: no cover - guarded
                raise InvalidSpecError(
                    f"invalid EngineSpec override: {exc}"
                ) from exc
        if "availability" not in overrides:
            raise InvalidSpecError(
                "engine overrides on a scenario without an engine spec "
                "must include 'availability'"
            )
        try:
            return EngineSpec(**overrides)
        except (TypeError, ValueError) as exc:
            raise InvalidSpecError(f"invalid EngineSpec override: {exc}") from exc

    # --------------------------------------------------------------- build
    def build(self, rng: "int | np.random.Generator | None" = None):
        """Materialize the scenario's workload, bit-for-bit deterministic.

        ``batch`` / ``stream`` kinds return ``(ensemble, requests)``;
        ``adpar`` returns ``(ensemble, hard_request)`` where the request
        is a deliberately unsatisfiable :class:`TriParams` near the point
        cloud (the legacy ``ADPaRScenario`` contract); ``trace`` reads
        the recorded journal at ``trace_path`` and returns ``(ensemble,
        TraceWorkload)`` — deterministic by construction, the trace *is*
        the workload.  ``rng`` overrides the spec seed — how the
        fig-runners drive repetition sweeps from externally spawned
        generators.
        """
        if self.kind == "trace":
            if not self.trace_path:
                raise InvalidSpecError(
                    "a 'trace' scenario needs trace_path (a decision "
                    "journal directory or segment file)"
                )
            from repro.journal.replay import load_trace

            return load_trace(self.trace_path)
        source = self.seed if rng is None else rng
        rng_ensemble, rng_requests = spawn_rngs(source, 2)
        if self.kind == "adpar":
            points = self.ensemble.build_points(rng_ensemble)
            request = hard_request_for(
                points, rng_requests, tightness=self.tightness
            )
            return StrategyEnsemble.from_params(points), request
        ensemble = self.ensemble.build(rng_ensemble)
        requests = self.requests.build(rng_requests)
        return ensemble, requests

    def arrival_plan(self, requests: list):
        """``(ordered, arrival, schedule)`` for materialized stream requests.

        The one place the effective :class:`ArrivalSpec` (spec's own, or
        the steady default), the arrival ordering, and the burst schedule
        are derived — the service simulator and the platform closed loop
        both drive streams through this.
        """
        arrival = self.arrival if self.arrival is not None else ArrivalSpec()
        ordered = arrival.order(requests)
        return ordered, arrival, arrival.schedule(len(ordered))

    def build_stream(self, rng: "int | np.random.Generator | None" = None):
        """Materialize a stream scenario as ``(ensemble, ordered, arrival)``.

        Requests come back already in arrival order (the ``adversarial``
        process reorders; the others keep stream order) together with the
        effective :class:`ArrivalSpec`.
        """
        if self.kind != "stream":
            raise InvalidSpecError(
                f"build_stream needs a 'stream' scenario, got kind={self.kind!r}"
            )
        ensemble, requests = self.build(rng)
        ordered, arrival, _ = self.arrival_plan(requests)
        return ensemble, ordered, arrival

    def deployment_request(self, params: TriParams) -> DeploymentRequest:
        """Wrap an ADPaR hard request as a :class:`DeploymentRequest`."""
        return DeploymentRequest(
            request_id=f"{self.requests.prefix}1",
            params=params,
            k=self.requests.k,
            task_type=self.requests.task_type,
        )
