"""Synthetic workload generation (the §5.2 experimental setup)."""

from repro.workloads.generators import (
    DISTRIBUTIONS,
    generate_adpar_points,
    generate_requests,
    generate_strategy_ensemble,
)
from repro.workloads.scenarios import (
    BatchScenario,
    ADPaRScenario,
    default_batch_scenario,
    default_adpar_scenario,
)

__all__ = [
    "DISTRIBUTIONS",
    "generate_strategy_ensemble",
    "generate_requests",
    "generate_adpar_points",
    "BatchScenario",
    "ADPaRScenario",
    "default_batch_scenario",
    "default_adpar_scenario",
]
