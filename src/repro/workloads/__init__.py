"""Synthetic workload generation (the §5.2 experimental setup).

Three layers:

* :mod:`repro.workloads.generators` — the raw samplers (pluggable
  dimension-value distributions via :func:`register_distribution`).
* :mod:`repro.workloads.spec` — the declarative, JSON-serializable
  ``WorkloadSpec`` family (:class:`EnsembleSpec`, :class:`RequestBatchSpec`,
  :class:`ArrivalSpec`, :class:`ScenarioSpec`) and
  :mod:`repro.workloads.simulation` (:class:`SimulationReport`).
* :mod:`repro.workloads.registry` — the :class:`ScenarioRegistry`
  catalog of named scenario families (``repro simulate --list``).

:class:`BatchScenario` / :class:`ADPaRScenario` are legacy shims over
the spec layer.
"""

from repro.workloads.generators import (
    DISTRIBUTIONS,
    distribution_names,
    generate_adpar_points,
    generate_requests,
    generate_strategy_ensemble,
    hard_request_for,
    register_distribution,
)
from repro.workloads.registry import ScenarioRegistry, default_scenario_registry
from repro.workloads.scenarios import (
    BatchScenario,
    ADPaRScenario,
    default_batch_scenario,
    default_adpar_scenario,
)
from repro.workloads.simulation import SimulationReport, simulate_scenario
from repro.workloads.spec import (
    ARRIVAL_PROCESSES,
    ArrivalSpec,
    EnsembleSpec,
    RequestBatchSpec,
    SCENARIO_KINDS,
    ScenarioSpec,
    replace_spec,
)

__all__ = [
    "ARRIVAL_PROCESSES",
    "ADPaRScenario",
    "ArrivalSpec",
    "BatchScenario",
    "DISTRIBUTIONS",
    "EnsembleSpec",
    "RequestBatchSpec",
    "SCENARIO_KINDS",
    "ScenarioRegistry",
    "ScenarioSpec",
    "SimulationReport",
    "default_adpar_scenario",
    "default_batch_scenario",
    "default_scenario_registry",
    "distribution_names",
    "generate_adpar_points",
    "generate_requests",
    "generate_strategy_ensemble",
    "hard_request_for",
    "register_distribution",
    "replace_spec",
    "simulate_scenario",
]
