"""Synthetic generators matching §5.2.2's setup.

* Strategy dimension values come from ``uniform`` on ``[0.5, 1]`` or
  ``normal(0.75, 0.1)`` (clipped into ``[0, 1]``).
* Per-strategy availability sensitivities α are uniform on ``[0.5, 1]``
  with β = 1 − α, so estimated parameters stay within ``[0, 1]`` for any
  availability ("generated in consistence with our real data
  experiments").  We scale both by the sampled dimension value so the
  parameter at full availability equals that value; latency *decreases*
  with availability, matching the Table 6 signs.
* Deployment parameters are uniform on ``[0.625, 1]``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.params import TriParams
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.utils.rng import ensure_rng

#: The paper's two dimension-value distributions (§5.2.2).  The full set
#: of registered samplers — including the beyond-the-paper families — is
#: :func:`distribution_names`.
DISTRIBUTIONS = ("uniform", "normal")

#: A sampler draws dimension values for ``size`` cells from ``options``.
#: Values outside ``[0, 1]`` must be clipped by the sampler itself.
DistributionSampler = Callable[
    [np.random.Generator, tuple, dict], np.ndarray
]


def _sample_uniform(rng: np.random.Generator, size: tuple, options: dict) -> np.ndarray:
    return rng.uniform(
        float(options.get("low", 0.5)), float(options.get("high", 1.0)), size=size
    )


def _sample_normal(rng: np.random.Generator, size: tuple, options: dict) -> np.ndarray:
    return np.clip(
        rng.normal(
            float(options.get("mean", 0.75)),
            float(options.get("std", 0.1)),
            size=size,
        ),
        0.0,
        1.0,
    )


def _sample_heavy_tail(
    rng: np.random.Generator, size: tuple, options: dict
) -> np.ndarray:
    """Pareto-tailed dimension values: most strategies mediocre, few elite.

    ``floor + scale · Pareto(tail)`` clipped into ``[0, 1]`` — the clip
    piles the (heavy) upper tail onto a mass of near-perfect strategies,
    the regime uniform/normal workloads never produce.
    """
    floor = float(options.get("floor", 0.5))
    scale = float(options.get("scale", 0.12))
    tail = float(options.get("tail", 1.8))
    if tail <= 0 or scale <= 0:
        raise ValueError("heavy-tail options require tail > 0 and scale > 0")
    return np.clip(floor + scale * rng.pareto(tail, size=size), 0.0, 1.0)


def _sample_mixture(
    rng: np.random.Generator, size: tuple, options: dict
) -> np.ndarray:
    """A weighted mixture of registered distributions.

    ``options["components"]`` is a sequence of ``(name, weight)`` or
    ``(name, weight, sub_options)`` entries.  The component is chosen
    per *row* (first axis): a strategy drawn from the elite component is
    elite in every dimension, which is what a "30% elite strategies"
    mixture means — per-cell mixing would make an all-elite row
    exponentially rare.
    """
    components = options.get("components")
    if not components:
        raise ValueError("mixture distribution requires non-empty 'components'")
    names, weights, sub_options = [], [], []
    for component in components:
        if len(component) not in (2, 3):
            raise ValueError(
                "each mixture component must be (name, weight[, options])"
            )
        names.append(component[0])
        weights.append(float(component[1]))
        sub_options.append(dict(component[2]) if len(component) == 3 else {})
        if names[-1] == "mixture":
            raise ValueError("mixture components cannot nest mixtures")
    probabilities = np.asarray(weights, dtype=float)
    if (probabilities < 0).any() or probabilities.sum() <= 0:
        raise ValueError("mixture weights must be >= 0 and sum to > 0")
    probabilities = probabilities / probabilities.sum()
    rows = int(size[0]) if size else 1
    rest = tuple(size[1:])
    choice = rng.choice(len(names), size=rows, p=probabilities)
    out = np.empty((rows,) + rest)
    for index, name in enumerate(names):
        mask = choice == index
        count = int(mask.sum())
        if count:
            out[mask] = _dimension_values(
                rng, (count,) + rest, name, sub_options[index]
            )
    return out.reshape(size)


_SAMPLERS: "dict[str, DistributionSampler]" = {}
_SAMPLER_DESCRIPTIONS: dict[str, str] = {}


def register_distribution(
    name: str,
    sampler: DistributionSampler,
    description: str = "",
    replace: bool = False,
) -> None:
    """Register a pluggable dimension-value sampler under ``name``."""
    if not name:
        raise ValueError("distribution name must be non-empty")
    if name in _SAMPLERS and not replace:
        raise ValueError(f"distribution {name!r} is already registered")
    _SAMPLERS[name] = sampler
    _SAMPLER_DESCRIPTIONS[name] = description


def distribution_names() -> "tuple[str, ...]":
    """Every registered distribution name, sorted."""
    return tuple(sorted(_SAMPLERS))


register_distribution(
    "uniform", _sample_uniform, "uniform on [0.5, 1] (§5.2.2 default)"
)
register_distribution(
    "normal", _sample_normal, "normal(0.75, 0.1) clipped into [0, 1] (§5.2.2)"
)
register_distribution(
    "heavy-tail",
    _sample_heavy_tail,
    "Pareto-tailed values clipped into [0, 1]; a few elite strategies",
)
register_distribution(
    "mixture",
    _sample_mixture,
    "weighted mixture of registered distributions (options['components'])",
)


def _dimension_values(
    rng: np.random.Generator,
    size: tuple,
    distribution: str,
    options: "dict | None" = None,
) -> np.ndarray:
    sampler = _SAMPLERS.get(distribution)
    if sampler is None:
        raise ValueError(
            f"distribution must be one of {distribution_names()}, "
            f"got {distribution!r}"
        )
    return sampler(rng, size, dict(options or {}))


def generate_strategy_ensemble(
    n: int,
    distribution: str = "uniform",
    seed: "int | np.random.Generator | None" = None,
    options: "dict | None" = None,
) -> StrategyEnsemble:
    """Generate ``n`` synthetic strategy profiles with linear models.

    Quality and cost increase with availability and hit the sampled
    dimension value at ``W = 1``; latency starts at its dimension value
    and decreases with availability.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = ensure_rng(seed)
    values = _dimension_values(rng, (n, 3), distribution, options)  # (q, c, l)
    sensitivity = rng.uniform(0.5, 1.0, size=(n, 3))
    alpha = np.empty((n, 3))
    beta = np.empty((n, 3))
    # Quality, cost: value(W) = v·(α·W + 1 − α) — increasing, value(1) = v.
    for dim in (0, 1):
        alpha[:, dim] = sensitivity[:, dim] * values[:, dim]
        beta[:, dim] = (1.0 - sensitivity[:, dim]) * values[:, dim]
    # Latency: value(W) = v·(1 − α·W) — decreasing from v toward v(1 − α).
    alpha[:, 2] = -sensitivity[:, 2] * values[:, 2]
    beta[:, 2] = values[:, 2]
    return StrategyEnsemble.from_arrays(alpha, beta)


def generate_requests(
    m: int,
    k: int = 10,
    seed: "int | np.random.Generator | None" = None,
    low: float = 0.625,
    high: float = 1.0,
    task_type: str = "generic",
    quality_offset: float = 0.25,
    prefix: str = "d",
) -> list[DeploymentRequest]:
    """Generate ``m`` deployment requests with parameters in ``[low, high]``.
    Ids are ``{prefix}1, {prefix}2, …`` — pass a distinct prefix when
    several generated batches meet in one stream/session.

    Cost and latency upper bounds are the raw draws.  The quality *lower*
    bound is the draw minus ``quality_offset`` (default 0.25, i.e. quality
    thresholds in [0.375, 0.75] for the paper's [0.625, 1] range).  Taking
    the raw draw as a quality lower bound makes every request demand
    near-perfect quality and drives Figure 14's satisfaction to ~0 at any
    sweep point — §5.2.2 does not spell out the quality orientation, and
    the offset reading is the one that reproduces the paper's satisfaction
    levels and curve shapes (see EXPERIMENTS.md).  Pass
    ``quality_offset=0.0`` for the literal reading.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if quality_offset < 0:
        raise ValueError("quality_offset must be >= 0")
    rng = ensure_rng(seed)
    params = rng.uniform(low, high, size=(m, 3))
    params[:, 0] = np.clip(params[:, 0] - quality_offset, 0.0, 1.0)
    return [
        DeploymentRequest(
            request_id=f"{prefix}{i + 1}",
            params=TriParams(*row),
            k=k,
            task_type=task_type,
        )
        for i, row in enumerate(params)
    ]


def generate_adpar_points(
    n: int,
    distribution: str = "uniform",
    seed: "int | np.random.Generator | None" = None,
    options: "dict | None" = None,
) -> list[TriParams]:
    """Fixed strategy parameter triples for ADPaR experiments.

    ADPaR operates on strategy *points* (estimated parameters), so the
    dimension values are used directly.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = ensure_rng(seed)
    values = _dimension_values(rng, (n, 3), distribution, options)
    return [TriParams(*row) for row in values]


def hard_request_for(
    points: Sequence[TriParams],
    seed: "int | np.random.Generator | None" = None,
    tightness: float = 0.15,
) -> TriParams:
    """A deliberately unsatisfiable request near the point cloud.

    Used by the ADPaR experiments: thresholds are pushed past the best
    strategies so an alternative is always required.
    """
    rng = ensure_rng(seed)
    arr = np.array([p.as_tuple() for p in points])  # (n, 3) q/c/l
    quality = float(np.clip(arr[:, 0].max() + rng.uniform(0.0, tightness), 0.0, 1.0))
    cost = float(np.clip(arr[:, 1].min() - rng.uniform(0.0, tightness), 0.0, 1.0))
    latency = float(np.clip(arr[:, 2].min() - rng.uniform(0.0, tightness), 0.0, 1.0))
    return TriParams(quality=quality, cost=cost, latency=latency)
