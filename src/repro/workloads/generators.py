"""Synthetic generators matching §5.2.2's setup.

* Strategy dimension values come from ``uniform`` on ``[0.5, 1]`` or
  ``normal(0.75, 0.1)`` (clipped into ``[0, 1]``).
* Per-strategy availability sensitivities α are uniform on ``[0.5, 1]``
  with β = 1 − α, so estimated parameters stay within ``[0, 1]`` for any
  availability ("generated in consistence with our real data
  experiments").  We scale both by the sampled dimension value so the
  parameter at full availability equals that value; latency *decreases*
  with availability, matching the Table 6 signs.
* Deployment parameters are uniform on ``[0.625, 1]``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.params import TriParams
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.utils.rng import ensure_rng

DISTRIBUTIONS = ("uniform", "normal")


def _dimension_values(
    rng: np.random.Generator, size: tuple, distribution: str
) -> np.ndarray:
    if distribution == "uniform":
        return rng.uniform(0.5, 1.0, size=size)
    if distribution == "normal":
        return np.clip(rng.normal(0.75, 0.1, size=size), 0.0, 1.0)
    raise ValueError(
        f"distribution must be one of {DISTRIBUTIONS}, got {distribution!r}"
    )


def generate_strategy_ensemble(
    n: int,
    distribution: str = "uniform",
    seed: "int | np.random.Generator | None" = None,
) -> StrategyEnsemble:
    """Generate ``n`` synthetic strategy profiles with linear models.

    Quality and cost increase with availability and hit the sampled
    dimension value at ``W = 1``; latency starts at its dimension value
    and decreases with availability.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = ensure_rng(seed)
    values = _dimension_values(rng, (n, 3), distribution)  # (quality, cost, latency)
    sensitivity = rng.uniform(0.5, 1.0, size=(n, 3))
    alpha = np.empty((n, 3))
    beta = np.empty((n, 3))
    # Quality, cost: value(W) = v·(α·W + 1 − α) — increasing, value(1) = v.
    for dim in (0, 1):
        alpha[:, dim] = sensitivity[:, dim] * values[:, dim]
        beta[:, dim] = (1.0 - sensitivity[:, dim]) * values[:, dim]
    # Latency: value(W) = v·(1 − α·W) — decreasing from v toward v(1 − α).
    alpha[:, 2] = -sensitivity[:, 2] * values[:, 2]
    beta[:, 2] = values[:, 2]
    return StrategyEnsemble.from_arrays(alpha, beta)


def generate_requests(
    m: int,
    k: int = 10,
    seed: "int | np.random.Generator | None" = None,
    low: float = 0.625,
    high: float = 1.0,
    task_type: str = "generic",
    quality_offset: float = 0.25,
    prefix: str = "d",
) -> list[DeploymentRequest]:
    """Generate ``m`` deployment requests with parameters in ``[low, high]``.
    Ids are ``{prefix}1, {prefix}2, …`` — pass a distinct prefix when
    several generated batches meet in one stream/session.

    Cost and latency upper bounds are the raw draws.  The quality *lower*
    bound is the draw minus ``quality_offset`` (default 0.25, i.e. quality
    thresholds in [0.375, 0.75] for the paper's [0.625, 1] range).  Taking
    the raw draw as a quality lower bound makes every request demand
    near-perfect quality and drives Figure 14's satisfaction to ~0 at any
    sweep point — §5.2.2 does not spell out the quality orientation, and
    the offset reading is the one that reproduces the paper's satisfaction
    levels and curve shapes (see EXPERIMENTS.md).  Pass
    ``quality_offset=0.0`` for the literal reading.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if quality_offset < 0:
        raise ValueError("quality_offset must be >= 0")
    rng = ensure_rng(seed)
    params = rng.uniform(low, high, size=(m, 3))
    params[:, 0] = np.clip(params[:, 0] - quality_offset, 0.0, 1.0)
    return [
        DeploymentRequest(
            request_id=f"{prefix}{i + 1}",
            params=TriParams(*row),
            k=k,
            task_type=task_type,
        )
        for i, row in enumerate(params)
    ]


def generate_adpar_points(
    n: int,
    distribution: str = "uniform",
    seed: "int | np.random.Generator | None" = None,
) -> list[TriParams]:
    """Fixed strategy parameter triples for ADPaR experiments.

    ADPaR operates on strategy *points* (estimated parameters), so the
    dimension values are used directly.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    rng = ensure_rng(seed)
    values = _dimension_values(rng, (n, 3), distribution)
    return [TriParams(*row) for row in values]


def hard_request_for(
    points: Sequence[TriParams],
    seed: "int | np.random.Generator | None" = None,
    tightness: float = 0.15,
) -> TriParams:
    """A deliberately unsatisfiable request near the point cloud.

    Used by the ADPaR experiments: thresholds are pushed past the best
    strategies so an alternative is always required.
    """
    rng = ensure_rng(seed)
    arr = np.array([p.as_tuple() for p in points])  # (n, 3) q/c/l
    quality = float(np.clip(arr[:, 0].max() + rng.uniform(0.0, tightness), 0.0, 1.0))
    cost = float(np.clip(arr[:, 1].min() - rng.uniform(0.0, tightness), 0.0, 1.0))
    latency = float(np.clip(arr[:, 2].min() - rng.uniform(0.0, tightness), 0.0, 1.0))
    return TriParams(quality=quality, cost=cost, latency=latency)
