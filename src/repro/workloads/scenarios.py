"""Legacy named scenarios — thin shims over the declarative spec layer.

§5.2.2: batch experiments default to ``|S| = 10000, m = 10, k = 10,
W = 0.5`` (quality sweeps) and ``|S| = 30, m = 5, k = 10, W = 0.5`` when
brute force must participate; ADPaR defaults to ``|S| = 200, k = 5``
(``|S| = 20, k = 5`` with brute force).

:class:`BatchScenario` and :class:`ADPaRScenario` keep their seed-era
fields and bit-for-bit build outputs (differential-tested), but delegate
materialization to :class:`~repro.workloads.spec.ScenarioSpec` — the
frozen, JSON-serializable workload API new code should use directly (see
:mod:`repro.workloads.registry` for the named catalog).  Their ``with_``
sweep helpers now reject unknown field names with the typed
:class:`~repro.exceptions.InvalidSpecError` instead of a bare
``TypeError``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import TriParams
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.workloads.spec import (
    EnsembleSpec,
    RequestBatchSpec,
    ScenarioSpec,
    replace_spec,
)


@dataclass(frozen=True)
class BatchScenario:
    """One batch-deployment experiment configuration (legacy shim)."""

    n_strategies: int = 10_000
    m_requests: int = 10
    k: int = 10
    availability: float = 0.5
    distribution: str = "uniform"
    seed: int = 7

    def to_spec(self) -> ScenarioSpec:
        """The equivalent declarative :class:`ScenarioSpec`."""
        from repro.api.wire import EngineSpec

        return ScenarioSpec(
            kind="batch",
            ensemble=EnsembleSpec(
                n_strategies=self.n_strategies, distribution=self.distribution
            ),
            requests=RequestBatchSpec(m_requests=self.m_requests, k=self.k),
            engine=EngineSpec(availability=self.availability),
            seed=self.seed,
        )

    def build(self) -> tuple[StrategyEnsemble, list[DeploymentRequest]]:
        """Materialize the ensemble and request batch."""
        return self.to_spec().build()

    def with_(self, **overrides) -> "BatchScenario":
        """Copy with overrides (sweep helper); unknown fields are typed errors."""
        return replace_spec(self, **overrides)


@dataclass(frozen=True)
class ADPaRScenario:
    """One ADPaR experiment configuration (legacy shim)."""

    n_strategies: int = 200
    k: int = 5
    distribution: str = "uniform"
    seed: int = 11
    tightness: float = 0.15

    def to_spec(self) -> ScenarioSpec:
        """The equivalent declarative :class:`ScenarioSpec`."""
        from repro.api.wire import EngineSpec

        return ScenarioSpec(
            kind="adpar",
            ensemble=EnsembleSpec(
                n_strategies=self.n_strategies, distribution=self.distribution
            ),
            requests=RequestBatchSpec(m_requests=1, k=self.k),
            engine=EngineSpec(availability=1.0),
            seed=self.seed,
            tightness=self.tightness,
        )

    def build(self) -> tuple[StrategyEnsemble, TriParams]:
        """Materialize the strategy points and a hard request."""
        return self.to_spec().build()

    def with_(self, **overrides) -> "ADPaRScenario":
        """Copy with overrides (sweep helper); unknown fields are typed errors."""
        return replace_spec(self, **overrides)


def default_batch_scenario(brute_force: bool = False) -> BatchScenario:
    """Paper defaults; the brute-force variant shrinks to tractable sizes."""
    if brute_force:
        return BatchScenario(n_strategies=30, m_requests=5, k=10, availability=0.5)
    return BatchScenario()


def default_adpar_scenario(brute_force: bool = False) -> ADPaRScenario:
    """Paper defaults for ADPaR quality experiments."""
    if brute_force:
        return ADPaRScenario(n_strategies=20, k=5)
    return ADPaRScenario()
