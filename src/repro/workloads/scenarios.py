"""Named experiment scenarios with the paper's default parameters.

§5.2.2: batch experiments default to ``|S| = 10000, m = 10, k = 10,
W = 0.5`` (quality sweeps) and ``|S| = 30, m = 5, k = 10, W = 0.5`` when
brute force must participate; ADPaR defaults to ``|S| = 200, k = 5``
(``|S| = 20, k = 5`` with brute force).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.core.params import TriParams
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.workloads.generators import (
    generate_adpar_points,
    generate_requests,
    generate_strategy_ensemble,
    hard_request_for,
)


@dataclass(frozen=True)
class BatchScenario:
    """One batch-deployment experiment configuration."""

    n_strategies: int = 10_000
    m_requests: int = 10
    k: int = 10
    availability: float = 0.5
    distribution: str = "uniform"
    seed: int = 7

    def build(self) -> tuple[StrategyEnsemble, list[DeploymentRequest]]:
        """Materialize the ensemble and request batch."""
        rng_strategies, rng_requests = spawn_rngs(self.seed, 2)
        ensemble = generate_strategy_ensemble(
            self.n_strategies, self.distribution, rng_strategies
        )
        requests = generate_requests(self.m_requests, self.k, rng_requests)
        return ensemble, requests

    def with_(self, **overrides) -> "BatchScenario":
        """Copy with overrides (sweep helper)."""
        return replace(self, **overrides)


@dataclass(frozen=True)
class ADPaRScenario:
    """One ADPaR experiment configuration."""

    n_strategies: int = 200
    k: int = 5
    distribution: str = "uniform"
    seed: int = 11
    tightness: float = 0.15

    def build(self) -> tuple[StrategyEnsemble, TriParams]:
        """Materialize the strategy points and a hard request."""
        rng_points, rng_request = spawn_rngs(self.seed, 2)
        points = generate_adpar_points(self.n_strategies, self.distribution, rng_points)
        request = hard_request_for(points, rng_request, tightness=self.tightness)
        ensemble = StrategyEnsemble.from_params(points)
        return ensemble, request

    def with_(self, **overrides) -> "ADPaRScenario":
        """Copy with overrides (sweep helper)."""
        return replace(self, **overrides)


def default_batch_scenario(brute_force: bool = False) -> BatchScenario:
    """Paper defaults; the brute-force variant shrinks to tractable sizes."""
    if brute_force:
        return BatchScenario(n_strategies=30, m_requests=5, k=10, availability=0.5)
    return BatchScenario()


def default_adpar_scenario(brute_force: bool = False) -> ADPaRScenario:
    """Paper defaults for ADPaR quality experiments."""
    if brute_force:
        return ADPaRScenario(n_strategies=20, k=5)
    return ADPaRScenario()
