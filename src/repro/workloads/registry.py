"""The scenario registry: named workload families behind one seam.

Exactly parallel to :class:`~repro.engine.registry.PlannerRegistry` and
:class:`~repro.engine.solvers.SolverRegistry`: stable names map to
frozen :class:`~repro.workloads.spec.ScenarioSpec` values, so the CLI
(``repro simulate <name>``), the service (``simulate`` envelopes naming
a family), the platform simulator and the fig-runners all draw workloads
from one catalog instead of hand-wiring generator calls.

The built-in catalog covers the paper's §5.2.2 defaults plus the
beyond-the-paper families the ROADMAP asks for (skewed availability,
heavy-tail and mixture ensembles, flash crowds, high-k stress,
deferred churn, diurnal and adversarial arrivals).  ``create(name,
**overrides)`` clones a family with sweep overrides routed through
:meth:`ScenarioSpec.with_` — unknown fields fail with the typed
``invalid_spec`` error, unknown names with ``unknown_scenario``.
"""

from __future__ import annotations

from dataclasses import replace

from repro.exceptions import UnknownScenarioError
from repro.workloads.spec import (
    ArrivalSpec,
    EnsembleSpec,
    RequestBatchSpec,
    ScenarioSpec,
)


class ScenarioRegistry:
    """Name → :class:`ScenarioSpec` mapping with typed error handling."""

    def __init__(self):
        self._specs: "dict[str, ScenarioSpec]" = {}

    def register(
        self,
        name: str,
        spec: ScenarioSpec,
        replace_existing: bool = False,
    ) -> None:
        """Register a scenario family; re-registering needs ``replace_existing``."""
        if not name:
            raise ValueError("scenario name must be non-empty")
        if name in self._specs and not replace_existing:
            raise ValueError(f"scenario {name!r} is already registered")
        if spec.name != name:
            spec = replace(spec, name=name)
        self._specs[name] = spec

    def names(self) -> list[str]:
        """Registered scenario names, sorted."""
        return sorted(self._specs)

    def describe(self, name: str) -> str:
        return self.get(name).description

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def get(self, name: str) -> ScenarioSpec:
        """The registered spec for ``name`` (frozen; copy via ``with_``)."""
        spec = self._specs.get(name)
        if spec is None:
            known = ", ".join(self.names()) or "<none>"
            raise UnknownScenarioError(
                f"unknown scenario {name!r}; registered: {known}"
            )
        return spec

    def create(self, name: str, **overrides) -> ScenarioSpec:
        """One family instance, with sweep overrides applied."""
        spec = self.get(name)
        return spec.with_(**overrides) if overrides else spec


def _engine(availability: float, **kwargs):
    # Lazy import: repro.api.wire imports repro.workloads.spec for the
    # codecs, so the registry must not import it at module load.
    from repro.api.wire import EngineSpec

    return EngineSpec(availability=availability, **kwargs)


def _builtin_registry() -> ScenarioRegistry:
    registry = ScenarioRegistry()
    register = registry.register

    register(
        "paper-batch",
        ScenarioSpec(
            kind="batch",
            description=(
                "§5.2.2 batch defaults: |S|=10000, m=10, k=10, W=0.5, "
                "uniform dimension values"
            ),
            ensemble=EnsembleSpec(n_strategies=10_000),
            requests=RequestBatchSpec(m_requests=10, k=10),
            engine=_engine(0.5),
            seed=7,
        ),
    )
    register(
        "paper-batch-small",
        ScenarioSpec(
            kind="batch",
            description=(
                "brute-force-tractable batch (§5.2.2): |S|=30, m=5, k=10, "
                "W=0.5, max-case aggregation + strict workforce "
                "(the Figure 15/16 setup)"
            ),
            ensemble=EnsembleSpec(n_strategies=30),
            requests=RequestBatchSpec(m_requests=5, k=10),
            engine=_engine(0.5, aggregation="max", workforce_mode="strict"),
            seed=7,
        ),
    )
    register(
        "paper-adpar",
        ScenarioSpec(
            kind="adpar",
            description=(
                "§5.2.2 ADPaR defaults: |S|=200, k=5, uniform points, one "
                "hard request 0.15 past the frontier"
            ),
            ensemble=EnsembleSpec(n_strategies=200),
            requests=RequestBatchSpec(m_requests=1, k=5),
            engine=_engine(1.0),
            seed=11,
            tightness=0.15,
        ),
    )
    register(
        "paper-adpar-small",
        ScenarioSpec(
            kind="adpar",
            description="brute-force-tractable ADPaR: |S|=20, k=5",
            ensemble=EnsembleSpec(n_strategies=20),
            requests=RequestBatchSpec(m_requests=1, k=5),
            engine=_engine(1.0),
            seed=11,
            tightness=0.15,
        ),
    )
    register(
        "skewed-availability",
        ScenarioSpec(
            kind="batch",
            description=(
                "scarcity regime: paper batch at W=0.15 — most requests "
                "fall through to ADPaR alternatives"
            ),
            ensemble=EnsembleSpec(n_strategies=2_000),
            requests=RequestBatchSpec(m_requests=50, k=10),
            engine=_engine(0.15),
            seed=19,
        ),
    )
    register(
        "heavy-tail",
        ScenarioSpec(
            kind="batch",
            description=(
                "Pareto-tailed ensemble: a few elite strategies over a "
                "mediocre mass (distribution='heavy-tail')"
            ),
            ensemble=EnsembleSpec(n_strategies=2_000, distribution="heavy-tail"),
            requests=RequestBatchSpec(m_requests=20, k=10),
            engine=_engine(0.5, workforce_mode="strict"),
            seed=23,
        ),
    )
    register(
        "mixture-of-distributions",
        ScenarioSpec(
            kind="batch",
            description=(
                "bimodal ensemble: 70% uniform mass + 30% tight normal "
                "elite (distribution='mixture')"
            ),
            ensemble=EnsembleSpec(
                n_strategies=2_000,
                distribution="mixture",
                options={
                    "components": [
                        ["uniform", 0.7],
                        ["normal", 0.3, {"mean": 0.9, "std": 0.03}],
                    ]
                },
            ),
            requests=RequestBatchSpec(m_requests=20, k=10),
            engine=_engine(0.5, workforce_mode="strict"),
            seed=29,
        ),
    )
    register(
        "high-k-stress",
        ScenarioSpec(
            kind="batch",
            description=(
                "high-k stress: every request demands k=|S|/2 strategies "
                "at once — the worst case for the workforce ledger"
            ),
            ensemble=EnsembleSpec(n_strategies=500),
            requests=RequestBatchSpec(m_requests=40, k=250),
            engine=_engine(0.7),
            seed=31,
        ),
    )
    register(
        "steady-stream",
        ScenarioSpec(
            kind="stream",
            description=(
                "steady streaming admission: |S|=30, 1000 arrivals in "
                "64-request micro-bursts, hold 2 (the `repro stream` defaults)"
            ),
            ensemble=EnsembleSpec(n_strategies=30),
            requests=RequestBatchSpec(m_requests=1_000, k=3),
            arrival=ArrivalSpec(process="steady", burst_size=64, hold_bursts=2),
            engine=_engine(0.9, aggregation="max"),
            seed=7,
        ),
    )
    register(
        "flash-crowd",
        ScenarioSpec(
            kind="stream",
            description=(
                "flash-crowd streaming: every 6th burst spikes 8x over the "
                "32-request baseline, stressing burst admission"
            ),
            ensemble=EnsembleSpec(n_strategies=50),
            requests=RequestBatchSpec(m_requests=1_200, k=3),
            arrival=ArrivalSpec(
                process="burst",
                burst_size=32,
                hold_bursts=2,
                spike_every=6,
                spike_factor=8.0,
            ),
            engine=_engine(0.8, aggregation="max"),
            seed=37,
        ),
    )
    register(
        "diurnal-stream",
        ScenarioSpec(
            kind="stream",
            description=(
                "diurnal streaming: burst sizes follow a sinusoidal load "
                "curve (±75% around 48 requests, 16-burst period)"
            ),
            ensemble=EnsembleSpec(n_strategies=50),
            requests=RequestBatchSpec(m_requests=1_200, k=3),
            arrival=ArrivalSpec(
                process="diurnal",
                burst_size=48,
                hold_bursts=2,
                period_bursts=16,
                amplitude=0.75,
            ),
            engine=_engine(0.85, aggregation="max"),
            seed=41,
        ),
    )
    register(
        "deferred-churn",
        ScenarioSpec(
            kind="stream",
            description=(
                "deferred-queue churn: W=0.7 with k=3 and long holds keeps "
                "the deferred queue full and the retry path hot"
            ),
            ensemble=EnsembleSpec(n_strategies=30),
            requests=RequestBatchSpec(m_requests=800, k=3),
            arrival=ArrivalSpec(process="steady", burst_size=32, hold_bursts=5),
            engine=_engine(0.7, aggregation="max"),
            seed=43,
        ),
    )
    register(
        "recorded-trace",
        ScenarioSpec(
            kind="trace",
            description=(
                "reenact a recorded decision journal: point trace_path at "
                "a --journal directory (repro simulate recorded-trace "
                "--set trace_path=...) and the primary ensemble's "
                "sessions replay against this engine spec"
            ),
            # Nominal sub-specs: a trace scenario's workload is the
            # journal itself, not a generated batch.  The engine spec is
            # what the trace replays *against* — override it (--set
            # availability=0.3 etc.) to make the reenactment a
            # counterfactual instead of a determinism check.
            ensemble=EnsembleSpec(n_strategies=1),
            requests=RequestBatchSpec(m_requests=1, k=1),
            engine=_engine(0.6),
            seed=7,
        ),
    )
    register(
        "adversarial-arrivals",
        ScenarioSpec(
            kind="stream",
            description=(
                "adversarial ordering: the hardest requests (tight budgets, "
                "demanding quality) arrive first and drain the ledger early"
            ),
            ensemble=EnsembleSpec(n_strategies=40),
            requests=RequestBatchSpec(m_requests=800, k=4),
            arrival=ArrivalSpec(
                process="adversarial", burst_size=32, hold_bursts=3
            ),
            engine=_engine(0.6, aggregation="max"),
            seed=47,
        ),
    )
    return registry


_DEFAULT_REGISTRY: "ScenarioRegistry | None" = None


def default_scenario_registry() -> ScenarioRegistry:
    """The process-wide registry with the built-in scenario catalog.

    Built lazily on first use — the catalog carries
    :class:`~repro.api.wire.EngineSpec` values and the wire module
    imports the spec classes, so eager construction would cycle.
    """
    global _DEFAULT_REGISTRY
    if _DEFAULT_REGISTRY is None:
        _DEFAULT_REGISTRY = _builtin_registry()
    return _DEFAULT_REGISTRY
