"""Service-level scenario simulation: one spec in, one structured report out.

:func:`simulate_scenario` is the execution half of the declarative
workload API: given a materialized :class:`~repro.workloads.spec.ScenarioSpec`
and the engine to run it on, it drives the scenario's kind through the
engine's canonical entry points — :meth:`RecommendationEngine.resolve`
for ``batch``, :func:`~repro.engine.session.drive_stream` (with the
arrival process's burst schedule) for ``stream``, batch ADPaR for
``adpar`` — and folds the outcome into one flat, wire-serializable
:class:`SimulationReport`.

:class:`~repro.api.EngineService` exposes this as the ``simulate``
envelope; ``repro simulate`` is the CLI front end.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.workloads.spec import ScenarioSpec


@dataclass(frozen=True)
class SimulationReport:
    """The structured outcome of one scenario simulation.

    One flat record covering all scenario kinds; fields that do not
    apply to a kind hold their zero value (e.g. ``admitted`` for a
    batch run, ``objective_value`` for an ADPaR run, the ``replay_*``
    trio for anything but a ``trace`` reenactment).  ``elapsed_s`` is
    wall-clock and therefore the one non-reproducible field.
    """

    scenario: ScenarioSpec
    kind: str
    fingerprint: str
    n_strategies: int
    arrivals: int
    elapsed_s: float
    satisfied: int = 0
    alternative: int = 0
    infeasible: int = 0
    admitted: int = 0
    completed: int = 0
    retried: int = 0
    still_deferred: int = 0
    objective_value: float = 0.0
    workforce_available: float = 0.0
    workforce_used: float = 0.0
    utilization: float = 0.0
    mean_distance: float = 0.0
    replay_sessions: int = 0
    replay_decisions: int = 0
    replay_flips: int = 0

    def throughput_rps(self) -> float:
        """Requests driven per wall-clock second."""
        return self.arrivals / max(self.elapsed_s, 1e-9)

    def summary(self) -> str:
        """A compact human-readable rendering (the CLI output)."""
        name = self.scenario.name or "<inline>"
        lines = [
            f"scenario={name} kind={self.kind} |S|={self.n_strategies} "
            f"arrivals={self.arrivals} seed={self.scenario.seed}",
        ]
        if self.kind == "adpar":
            lines.append(
                f"alternative={self.alternative} infeasible={self.infeasible} "
                f"mean_distance={self.mean_distance:.4f}"
            )
        elif self.kind == "trace":
            lines.append(
                f"replayed sessions={self.replay_sessions} "
                f"decisions={self.replay_decisions} "
                f"identical={self.satisfied} flips={self.replay_flips}"
            )
        elif self.kind == "stream":
            lines.append(
                f"admitted={self.admitted} completed={self.completed} "
                f"alternative={self.alternative} "
                f"infeasible={self.infeasible} retried={self.retried} "
                f"deferred={self.still_deferred}"
            )
            lines.append(f"utilization={self.utilization:.2f}")
        else:
            lines.append(
                f"satisfied={self.satisfied} alternative={self.alternative} "
                f"infeasible={self.infeasible}"
            )
            lines.append(
                f"objective_value={self.objective_value:.3f} "
                f"workforce_used={self.workforce_used:.3f}"
                f"/{self.workforce_available:.3f}"
            )
        lines.append(
            f"throughput={self.throughput_rps():.0f} req/s "
            f"({self.elapsed_s * 1e3:.1f} ms)"
        )
        return "\n".join(lines)


def simulate_scenario(
    engine,
    spec: ScenarioSpec,
    ensemble=None,
    payload=None,
) -> SimulationReport:
    """Run one scenario on ``engine`` and fold the outcome into a report.

    ``ensemble``/``payload`` are the pre-materialized halves of
    ``spec.build()`` — pass them when the caller already built them
    (the service's content-hash workload cache does); omitted, the spec
    is built here.  The engine must be configured for the scenario (the
    service pools it by ``spec.engine``).
    """
    from repro.core.streaming import StreamStatus
    from repro.engine.cache import ensemble_fingerprint
    from repro.engine.session import drive_stream

    if ensemble is None or payload is None:
        ensemble, payload = spec.build()
    fingerprint = ensemble_fingerprint(ensemble)
    common = {
        "scenario": spec,
        "kind": spec.kind,
        "fingerprint": fingerprint,
        "n_strategies": spec.ensemble.n_strategies,
    }

    if spec.kind == "batch":
        requests = list(payload)
        start = time.perf_counter()
        report = engine.resolve(requests)
        elapsed = time.perf_counter() - start
        infeasible = (
            len(report.resolutions)
            - report.satisfied_count
            - report.alternative_count
        )
        return SimulationReport(
            arrivals=len(requests),
            elapsed_s=elapsed,
            satisfied=report.satisfied_count,
            alternative=report.alternative_count,
            infeasible=infeasible,
            objective_value=report.batch.objective_value,
            workforce_available=report.batch.workforce_available,
            workforce_used=report.batch.workforce_used,
            **common,
        )

    if spec.kind == "stream":
        ordered, arrival, schedule = spec.arrival_plan(list(payload))
        session = engine.open_session()
        start = time.perf_counter()
        decisions, retried = drive_stream(
            session,
            ordered,
            burst_size=arrival.burst_size,
            hold_bursts=arrival.hold_bursts,
            schedule=schedule,
        )
        elapsed = time.perf_counter() - start
        by_status = {status: 0 for status in StreamStatus}
        for decision in decisions:
            by_status[decision.status] += 1
        # ``satisfied`` stays 0 for streams: admission outcomes live in
        # admitted/completed, which would otherwise just be duplicated.
        return SimulationReport(
            arrivals=len(ordered),
            elapsed_s=elapsed,
            alternative=by_status[StreamStatus.ALTERNATIVE],
            infeasible=by_status[StreamStatus.INFEASIBLE],
            admitted=session.admitted_count,
            completed=session.completed_count,
            retried=retried,
            still_deferred=len(session.deferred),
            utilization=session.utilization(),
            **common,
        )

    if spec.kind == "trace":
        # Reenactment: the payload is a recorded TraceWorkload; re-drive
        # its primary-ensemble sessions on this engine and fold the
        # decision diff into the flat report (``satisfied`` carries the
        # exactly-reproduced pair count, ``alternative`` the changed
        # pairs — the full diff comes from ``repro replay``).
        from repro.journal.replay import reenact_on_engine

        common["n_strategies"] = len(ensemble.names)
        start = time.perf_counter()
        replay = reenact_on_engine(engine, payload)
        elapsed = time.perf_counter() - start
        return SimulationReport(
            arrivals=payload.arrivals,
            elapsed_s=elapsed,
            satisfied=replay.identical,
            alternative=replay.changed,
            replay_sessions=replay.sessions,
            replay_decisions=replay.decisions,
            replay_flips=replay.flips,
            **common,
        )

    # adpar: one deliberately unsatisfiable request, answered with the
    # closest alternative parameters by the engine's solver backend.
    request = spec.deployment_request(payload)
    start = time.perf_counter()
    results = engine.recommend_alternatives([request])
    elapsed = time.perf_counter() - start
    solved = [result for result in results if result is not None]
    mean_distance = (
        sum(result.distance for result in solved) / len(solved)
        if solved
        else 0.0
    )
    return SimulationReport(
        arrivals=1,
        elapsed_s=elapsed,
        alternative=len(solved),
        infeasible=len(results) - len(solved),
        mean_distance=mean_distance,
        **common,
    )
