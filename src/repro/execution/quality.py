"""Quality aggregation per deployment-strategy shape.

How individual contributions combine depends on the strategy:

* ``sequential_refinement`` — SEQ: each worker improves the previous
  state with diminishing returns (Figure 2a).
* ``best_of_independent`` — SIM-IND: independent attempts, an evaluation
  step keeps the best (Figures 2c/2d).
* ``collaborative_merge`` — COL: contributions merge; conflicts cost
  (the edit-war channel, Figure 2b).

Expert judging (§5.1.1 step 3) is modelled as a noiseless read of the
resulting latent quality.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _validate(contributions: Sequence[float]) -> np.ndarray:
    arr = np.asarray(list(contributions), dtype=float)
    if arr.size == 0:
        raise ValueError("need at least one contribution")
    if ((arr < 0) | (arr > 1)).any():
        raise ValueError("contribution qualities must lie in [0, 1]")
    return arr


def sequential_refinement(
    contributions: Sequence[float], improvement_rate: float = 0.45
) -> float:
    """SEQ aggregation: start from the first contribution, each later
    worker closes a fraction of the gap to their own ceiling.

    Order matters; quality is monotone in the number of workers.
    """
    arr = _validate(contributions)
    if not 0.0 < improvement_rate <= 1.0:
        raise ValueError("improvement_rate must lie in (0, 1]")
    quality = float(arr[0])
    for contribution in arr[1:]:
        ceiling = max(quality, float(contribution))
        quality = quality + improvement_rate * (ceiling - quality)
    return float(min(quality, 1.0))


def best_of_independent(contributions: Sequence[float]) -> float:
    """SIM-IND aggregation: the evaluation step keeps the best attempt."""
    return float(_validate(contributions).max())


def collaborative_merge(
    contributions: Sequence[float], conflict_penalty: float = 0.0
) -> float:
    """COL aggregation: a merge slightly above the mean (collaboration
    helps), minus whatever the edit war cost."""
    arr = _validate(contributions)
    synergy = 0.3 * (arr.max() - arr.mean())
    merged = float(arr.mean() + synergy - conflict_penalty)
    return float(min(max(merged, 0.0), 1.0))
