"""Collaborative text-editing tasks.

The paper's two task types: sentence translation (English→Hindi nursery
rhymes) and text creation (short texts on news topics).  Tasks carry a
latent difficulty that shapes contribution quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fraction, check_positive_int

#: The three rhymes used in the paper's translation deployments (Figure 9).
NURSERY_RHYMES = (
    "Mary Had a Little Lamb",
    "Lavender's Blue",
    "Rock-a-bye Baby",
)

#: The three topics used in the paper's creation deployments (Figure 10).
CREATION_TOPICS = (
    "Robert Mueller Report",
    "Notre Dame Cathedral",
    "2019 Pulitzer Prizes",
)

TASK_TYPES = ("translation", "creation")


@dataclass(frozen=True)
class CollaborativeTask:
    """One collaborative text-editing task."""

    task_id: str
    task_type: str
    title: str
    segments: int = 5  # lines of the rhyme / sentences to write
    difficulty: float = 0.5  # latent difficulty in [0, 1]

    def __post_init__(self):
        if self.task_type not in TASK_TYPES:
            raise ValueError(
                f"task_type must be one of {TASK_TYPES}, got {self.task_type!r}"
            )
        check_positive_int("segments", self.segments)
        check_fraction("difficulty", self.difficulty)


def make_translation_tasks(
    count: int, seed: "int | np.random.Generator | None" = None
) -> list[CollaborativeTask]:
    """Sentence-translation tasks cycling over the paper's rhymes."""
    rng = ensure_rng(seed)
    return [
        CollaborativeTask(
            task_id=f"tr{i:03d}",
            task_type="translation",
            title=NURSERY_RHYMES[i % len(NURSERY_RHYMES)],
            segments=int(rng.integers(4, 6)),
            difficulty=float(rng.uniform(0.35, 0.65)),
        )
        for i in range(count)
    ]


def make_creation_tasks(
    count: int, seed: "int | np.random.Generator | None" = None
) -> list[CollaborativeTask]:
    """Text-creation tasks cycling over the paper's topics."""
    rng = ensure_rng(seed)
    return [
        CollaborativeTask(
            task_id=f"cr{i:03d}",
            task_type="creation",
            title=CREATION_TOPICS[i % len(CREATION_TOPICS)],
            segments=int(rng.integers(4, 6)),
            difficulty=float(rng.uniform(0.4, 0.7)),
        )
        for i in range(count)
    ]
