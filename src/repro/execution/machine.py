"""Machine contributors for hybrid (HYB) strategies.

The paper's example pairs workers with Google Translate
(Figure 2d, SIM-IND-HYB).  The simulated machine produces an instant,
zero-cost draft whose quality floor depends on the task type — machine
translation of nursery rhymes is serviceable, open-ended text creation
less so.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.execution.tasks import CollaborativeTask

_DEFAULT_FLOORS = {"translation": 0.58, "creation": 0.48}


@dataclass(frozen=True)
class MachineContributor:
    """An algorithmic teammate (e.g. an MT system)."""

    name: str = "machine-translate"
    quality_floors: "tuple[tuple[str, float], ...]" = tuple(_DEFAULT_FLOORS.items())
    noise_std: float = 0.03

    def floor_for(self, task_type: str) -> float:
        """Baseline quality the machine achieves on a task type."""
        floors = dict(self.quality_floors)
        return floors.get(task_type, 0.45)

    def contribute(self, task: CollaborativeTask, rng: np.random.Generator) -> float:
        """Machine draft quality for ``task`` (difficulty hurts a little)."""
        base = self.floor_for(task.task_type) - 0.08 * (task.difficulty - 0.5)
        return float(np.clip(base + rng.normal(0.0, self.noise_std), 0.0, 1.0))

    @property
    def cost_usd(self) -> float:
        """Machines are free at this scale."""
        return 0.0

    @property
    def latency_hours(self) -> float:
        """Machine drafts are effectively instant."""
        return 0.0
