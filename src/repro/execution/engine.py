"""The strategy execution engine.

Deploys one collaborative task with one (Structure, Organization, Style)
strategy over a simulated crew and returns the observed outcome.

Generative model
----------------
The paper validates (Table 6, 90% confidence) that quality, cost and
latency of text-editing deployments are *linear in worker availability*.
The engine therefore carries per-(task type, strategy) ground-truth
coefficients — the four pairs measured in Table 6, extended with derived
values for the remaining strategies — and realizes each deployment as:

* a crew sized by availability (``engaged ≈ availability × HIT cap``),
* per-worker contributions drawn from worker skill and task difficulty,
  aggregated by the strategy shape (sequential refinement, best-of,
  collaborative merge) — these drive the quality *noise* around the
  linear target and the edit telemetry,
* cost as actual worker payments (fixed overhead + per-worker reward)
  normalized by the HIT budget — which reproduces the linear cost
  coefficients exactly up to crew-rounding noise,
* latency as the linear target scaled by realized crew speed,
* edit-war dynamics (simultaneous collaborative sessions only) that
  override contributions and depress quality, strongly when unguided —
  Figure 13's mechanism.

Calibration (Table 6) re-fits (α, β) from these noisy observations; the
recovered coefficients land inside the 90% CIs of the ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.strategy import Organization, Strategy, Structure, Style
from repro.execution.document import SharedDocument
from repro.execution.editwar import CollaborationDynamics
from repro.execution.machine import MachineContributor
from repro.execution.outcomes import DeploymentOutcome
from repro.execution.quality import (
    best_of_independent,
    collaborative_merge,
    sequential_refinement,
)
from repro.execution.tasks import CollaborativeTask
from repro.platform.worker import Worker
from repro.utils.rng import ensure_rng

#: Table 6 ground truth: (task type, strategy) -> parameter -> (α, β).
GROUND_TRUTH: dict = {
    ("translation", "SEQ-IND-CRO"): {
        "quality": (0.09, 0.85),
        "cost": (1.00, 0.00),
        "latency": (-0.98, 1.40),
    },
    ("translation", "SIM-COL-CRO"): {
        "quality": (0.09, 0.82),
        "cost": (0.82, 0.17),
        "latency": (-0.63, 1.01),
    },
    ("creation", "SEQ-IND-CRO"): {
        "quality": (0.10, 0.80),
        "cost": (1.00, 0.00),
        "latency": (-1.56, 2.04),
    },
    ("creation", "SIM-COL-CRO"): {
        "quality": (0.19, 0.70),
        "cost": (1.00, -0.00),
        "latency": (-1.38, 1.81),
    },
}


def ground_truth_for(task_type: str, strategy_name: str) -> dict:
    """Ground-truth coefficients for any (task type, strategy) pair.

    The four Table 6 pairs are returned verbatim; the remaining strategy
    combinations are derived from the nearest measured pair with
    dimension-level adjustments (HYB raises the quality floor and trims
    latency; IND under SIM behaves like SEQ-IND on quality but finishes
    faster; COL under SEQ splits the difference).
    """
    key = (task_type, strategy_name)
    if key in GROUND_TRUTH:
        return GROUND_TRUTH[key]
    strategy = Strategy.from_name(strategy_name)
    seq_ind = GROUND_TRUTH.get(
        (task_type, "SEQ-IND-CRO"), GROUND_TRUTH[("translation", "SEQ-IND-CRO")]
    )
    sim_col = GROUND_TRUTH.get(
        (task_type, "SIM-COL-CRO"), GROUND_TRUTH[("translation", "SIM-COL-CRO")]
    )
    base = seq_ind if strategy.organization is Organization.INDEPENDENT else sim_col
    quality_alpha, quality_beta = base["quality"]
    cost_alpha, cost_beta = base["cost"]
    latency_alpha, latency_beta = base["latency"]
    if strategy.structure is Structure.SIMULTANEOUS:
        # Parallel solicitation finishes faster than sequential hand-offs.
        latency_alpha *= 0.75
        latency_beta *= 0.78
    if strategy.organization is Organization.COLLABORATIVE and base is seq_ind:
        quality_beta -= 0.03
    if strategy.style is Style.HYBRID:
        # A machine draft raises the floor and saves ramp-up time.
        quality_beta = min(quality_beta + 0.02, 0.95)
        latency_beta *= 0.92
        cost_beta = max(cost_beta - 0.02, 0.0)
    return {
        "quality": (quality_alpha, quality_beta),
        "cost": (cost_alpha, cost_beta),
        "latency": (latency_alpha, latency_beta),
    }


@dataclass(frozen=True)
class EngineConfig:
    """Knobs of the execution engine."""

    crew_cap: int = 10  # workers per HIT (§5.1.1)
    reward_usd: float = 2.0  # per-worker payment
    window_hours: float = 72.0  # deployment window
    budget_usd: float = 20.0  # crew_cap × reward: the normalization base
    quality_noise_std: float = 0.015
    contribution_noise_std: float = 0.06
    skill_coupling: float = 0.05  # how much crew skill moves quality
    cost_noise_usd: float = 0.25  # payment jitter (bonuses, partial rejections)
    unguided_latency_penalty: float = 0.08


class ExecutionEngine:
    """Runs deployment strategies over simulated crews."""

    def __init__(
        self,
        config: "EngineConfig | None" = None,
        dynamics: "CollaborationDynamics | None" = None,
        machine: "MachineContributor | None" = None,
    ):
        self.config = config or EngineConfig()
        self.dynamics = dynamics or CollaborationDynamics()
        self.machine = machine or MachineContributor()

    # -------------------------------------------------------------------- run
    def run(
        self,
        strategy_name: str,
        task: CollaborativeTask,
        availability: float,
        workers: "list[Worker] | None" = None,
        guided: bool = True,
        seed: "int | np.random.Generator | None" = None,
    ) -> DeploymentOutcome:
        """Deploy ``task`` with ``strategy_name`` at the given availability."""
        if not 0.0 < availability <= 1.0:
            raise ValueError(f"availability must lie in (0, 1], got {availability}")
        rng = ensure_rng(seed)
        strategy = Strategy.from_name(strategy_name)
        truth = ground_truth_for(task.task_type, strategy_name)
        cfg = self.config

        engaged = max(1, int(round(availability * cfg.crew_cap)))
        realized_availability = engaged / cfg.crew_cap
        crew = self._crew(workers, engaged, rng)

        contributions = self._contributions(crew, task, rng)
        document = SharedDocument(segments=task.segments, base_quality=0.2)
        conflict_penalty = self._populate_document(
            document, strategy, crew, contributions, guided, rng
        )
        crowd_quality, expected_quality = self._aggregate(
            strategy, task, contributions, conflict_penalty, engaged
        )

        quality = self._quality(
            truth, availability, crowd_quality, expected_quality, conflict_penalty,
            strategy, task, rng,
        )
        cost, cost_usd = self._cost(truth, engaged, rng)
        latency, latency_hours = self._latency(
            truth, availability, crew, strategy, guided, rng
        )

        return DeploymentOutcome(
            task=task,
            strategy_name=strategy_name,
            availability=realized_availability,
            quality=quality,
            cost=cost,
            latency=latency,
            cost_usd=cost_usd,
            latency_hours=latency_hours,
            workers_engaged=engaged,
            edit_count=document.edit_count + (1 if strategy.style is Style.HYBRID else 0),
            overridden_edits=document.overridden_count,
            guided=guided,
        )

    def run_recommended(
        self,
        recommendation,
        task: CollaborativeTask,
        availability: float,
        workers: "list[Worker] | None" = None,
        guided: bool = True,
        seed: "int | np.random.Generator | None" = None,
        fallback_strategy: str = "SIM-COL-CRO",
    ) -> DeploymentOutcome:
        """Deploy the strategy a recommendation carries.

        ``recommendation`` is anything with ``strategy_names`` — a
        :class:`~repro.core.stratrec.StrategyAdvice`, a
        :class:`~repro.core.aggregator.RequestResolution`, or a
        :class:`~repro.core.streaming.StreamDecision` — so the execution
        layer consumes recommendation-engine output directly.  The first
        (cheapest-workforce) strategy is deployed; ``fallback_strategy``
        covers empty recommendations (infeasible requests).
        """
        names = tuple(getattr(recommendation, "strategy_names", ()) or ())
        strategy_name = names[0] if names else fallback_strategy
        return self.run(
            strategy_name,
            task,
            availability,
            workers=workers,
            guided=guided,
            seed=seed,
        )

    # -------------------------------------------------------------- internals
    def _crew(
        self, workers: "list[Worker] | None", engaged: int, rng: np.random.Generator
    ) -> list[Worker]:
        if workers:
            if len(workers) >= engaged:
                indices = rng.choice(len(workers), size=engaged, replace=False)
                return [workers[int(i)] for i in indices]
            return list(workers)
        from repro.platform.worker import generate_workers

        return generate_workers(engaged, seed=rng)

    def _contributions(
        self,
        crew: list[Worker],
        task: CollaborativeTask,
        rng: np.random.Generator,
    ) -> list[float]:
        deltas = []
        for worker in crew:
            base = worker.skill_level - 0.25 * (task.difficulty - 0.5)
            deltas.append(
                float(
                    np.clip(
                        base + rng.normal(0.0, self.config.contribution_noise_std),
                        0.0,
                        1.0,
                    )
                )
            )
        return deltas

    def _populate_document(
        self,
        document: SharedDocument,
        strategy: Strategy,
        crew: list[Worker],
        contributions: list[float],
        guided: bool,
        rng: np.random.Generator,
    ) -> float:
        """Write edits into the document; returns the conflict penalty."""
        per_worker = [
            (worker.worker_id, int(rng.integers(0, document.segments)), 0.12 * c)
            for worker, c in zip(crew, contributions)
        ]
        simultaneous_collab = (
            strategy.structure is Structure.SIMULTANEOUS
            and strategy.organization is Organization.COLLABORATIVE
        )
        if simultaneous_collab:
            return self.dynamics.run_session(document, per_worker, guided, rng)
        # Sequential or independent work: edits land without conflicts.
        from repro.execution.document import Edit

        for i, (worker_id, segment, delta) in enumerate(per_worker):
            document.apply_edit(
                Edit(worker_id=worker_id, time_hours=float(i), segment=segment,
                     delta_quality=delta)
            )
        return 0.0

    def _aggregate(
        self,
        strategy: Strategy,
        task: CollaborativeTask,
        contributions: list[float],
        conflict_penalty: float,
        engaged: int,
    ) -> tuple[float, float]:
        """Crowd aggregate and its crew-size-matched expectation.

        The expectation is computed on a constant-skill crew so that
        subtracting it cancels the crew-size dependence: only *skill*
        deviations (not availability) leak into the quality noise.
        """
        expected_contribution = 0.75 - 0.25 * (task.difficulty - 0.5)
        flat = [expected_contribution] * max(engaged, 1)
        if strategy.organization is Organization.COLLABORATIVE:
            crowd = collaborative_merge(contributions, conflict_penalty=0.0)
            expected = collaborative_merge(flat)
        elif strategy.structure is Structure.SEQUENTIAL:
            crowd = sequential_refinement(contributions)
            expected = sequential_refinement(flat)
        else:
            crowd = best_of_independent(contributions)
            expected = best_of_independent(flat)
        return crowd, expected

    def _quality(
        self,
        truth: dict,
        availability: float,
        crowd_quality: float,
        expected_quality: float,
        conflict_penalty: float,
        strategy: Strategy,
        task: CollaborativeTask,
        rng: np.random.Generator,
    ) -> float:
        alpha, beta = truth["quality"]
        target = alpha * availability + beta
        skill_shift = self.config.skill_coupling * (crowd_quality - expected_quality)
        quality = target + skill_shift - conflict_penalty
        quality += float(rng.normal(0.0, self.config.quality_noise_std))
        if strategy.style is Style.HYBRID:
            machine_quality = self.machine.contribute(task, rng)
            quality = max(quality, machine_quality + 0.04)
        return float(np.clip(quality, 0.0, 1.0))

    def _cost(
        self, truth: dict, engaged: int, rng: np.random.Generator
    ) -> tuple[float, float]:
        alpha, beta = truth["cost"]
        cfg = self.config
        overhead_usd = beta * cfg.budget_usd
        marginal_usd = alpha * cfg.reward_usd  # α scales the per-worker rate
        jitter_usd = float(rng.normal(0.0, cfg.cost_noise_usd))
        cost_usd = overhead_usd + engaged * marginal_usd + jitter_usd
        cost = cost_usd / cfg.budget_usd  # == β + α·(engaged / crew_cap) + noise
        return float(max(cost, 0.0)), float(max(cost_usd, 0.0))

    def _latency(
        self,
        truth: dict,
        availability: float,
        crew: list[Worker],
        strategy: Strategy,
        guided: bool,
        rng: np.random.Generator,
    ) -> tuple[float, float]:
        alpha, beta = truth["latency"]
        target = alpha * availability + beta
        mean_speed = float(np.mean([w.speed for w in crew])) if crew else 1.0
        latency = target / max(mean_speed, 0.25)
        if not guided:
            latency += self.config.unguided_latency_penalty
        latency += float(rng.normal(0.0, 0.01))
        latency = float(max(latency, 0.02))
        return latency, latency * self.config.window_hours
