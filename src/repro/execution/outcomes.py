"""Deployment outcomes: what one executed strategy run yields."""

from __future__ import annotations

from dataclasses import dataclass

from repro.execution.tasks import CollaborativeTask
from repro.modeling.calibration import Observation


@dataclass(frozen=True)
class DeploymentOutcome:
    """Observed result of deploying one task with one strategy.

    ``quality`` is the expert-judged score in [0, 1]; ``cost`` and
    ``latency`` are normalized against the deployment budget ($14 cap and
    72-hour window in §5.1.2) so they compare directly with deployment
    parameters.  Raw units are kept alongside.
    """

    task: CollaborativeTask
    strategy_name: str
    availability: float
    quality: float
    cost: float
    latency: float
    cost_usd: float
    latency_hours: float
    workers_engaged: int
    edit_count: int
    overridden_edits: int
    guided: bool

    def observation(self) -> Observation:
        """Project onto the calibration observation type."""
        return Observation(
            availability=self.availability,
            quality=self.quality,
            cost=self.cost,
            latency=self.latency,
        )

    def meets(self, quality: float, cost: float, latency: float) -> bool:
        """Threshold check in normalized units."""
        return (
            self.quality >= quality - 1e-9
            and self.cost <= cost + 1e-9
            and self.latency <= latency + 1e-9
        )
