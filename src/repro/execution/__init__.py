"""Strategy execution engine (the Google-Docs/expert-judging stand-in).

Runs a (Structure, Organization, Style) deployment strategy over a
simulated collaborative task with a crew of simulated workers and returns
the observed (quality, cost, latency) plus edit telemetry.  The aggregate
response surface is linear in worker availability by construction — the
paper's empirically validated model (Table 6) — while the micro-dynamics
(per-worker contributions, collaborative documents, edit wars, machine
help) exercise the code paths the real deployments exercised.
"""

from repro.execution.tasks import (
    CollaborativeTask,
    NURSERY_RHYMES,
    CREATION_TOPICS,
    make_creation_tasks,
    make_translation_tasks,
)
from repro.execution.document import Edit, SharedDocument
from repro.execution.editwar import CollaborationDynamics
from repro.execution.machine import MachineContributor
from repro.execution.quality import (
    best_of_independent,
    collaborative_merge,
    sequential_refinement,
)
from repro.execution.outcomes import DeploymentOutcome
from repro.execution.engine import GROUND_TRUTH, ExecutionEngine

__all__ = [
    "CollaborativeTask",
    "NURSERY_RHYMES",
    "CREATION_TOPICS",
    "make_translation_tasks",
    "make_creation_tasks",
    "Edit",
    "SharedDocument",
    "CollaborationDynamics",
    "MachineContributor",
    "sequential_refinement",
    "best_of_independent",
    "collaborative_merge",
    "DeploymentOutcome",
    "ExecutionEngine",
    "GROUND_TRUTH",
]
