"""Edit-war dynamics for simultaneous collaborative sessions.

The paper's post-mortem of Figure 13: "when workers were not guided, they
repeatedly overrode each other's contributions, giving rise to an edit
war" — unguided deployments averaged 6.25 edits per translation vs 3.45
under StratRec guidance, with depressed quality.  This module injects
exactly that failure mode: concurrent edits to the same segment conflict
with a probability that grows with concurrency and falls with guidance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.execution.document import Edit, SharedDocument


@dataclass(frozen=True)
class CollaborationDynamics:
    """Tunable conflict behaviour of a simultaneous collaborative session."""

    guided_conflict_rate: float = 0.08
    unguided_conflict_rate: float = 0.30
    unguided_extra_edit_factor: float = 1.8
    conflict_quality_penalty: float = 0.035

    def conflict_rate(self, guided: bool, concurrency: int) -> float:
        """Per-overlap conflict probability; saturates with concurrency."""
        base = self.guided_conflict_rate if guided else self.unguided_conflict_rate
        return float(min(base * (1.0 + 0.15 * max(concurrency - 2, 0)), 0.9))

    def run_session(
        self,
        document: SharedDocument,
        contributions: "list[tuple[str, int, float]]",
        guided: bool,
        rng: np.random.Generator,
        session_hours: float = 2.0,
    ) -> float:
        """Play out a simultaneous collaborative session.

        ``contributions`` are (worker_id, segment, delta_quality) triples.
        Unguided sessions generate redundant re-edits; whenever two edits
        land on the same segment, the earlier one is overridden with the
        conflict probability, costing its quality and a small penalty.
        Returns the total quality penalty incurred.
        """
        work = list(contributions)
        if not guided and work:
            extra = int(len(work) * (self.unguided_extra_edit_factor - 1.0))
            for _ in range(extra):
                worker_id, segment, delta = work[int(rng.integers(0, len(work)))]
                # A re-edit of someone else's segment, usually lower value.
                work.append((worker_id, segment, delta * float(rng.uniform(0.2, 0.6))))

        penalty = 0.0
        concurrency = max(len({w for w, _, _ in work}), 1)
        rate = self.conflict_rate(guided, concurrency)
        for worker_id, segment, delta in work:
            edit = Edit(
                worker_id=worker_id,
                time_hours=float(rng.uniform(0.0, session_hours)),
                segment=segment,
                delta_quality=delta,
            )
            document.apply_edit(edit)
        by_segment = document.edits_by_segment()
        for segment, edits in by_segment.items():
            edits.sort(key=lambda e: e.time_hours)
            for earlier, later in zip(edits, edits[1:]):
                if earlier.overridden:
                    continue
                if later.worker_id != earlier.worker_id and rng.random() < rate:
                    document.override(earlier)
                    penalty += self.conflict_quality_penalty
        return penalty
