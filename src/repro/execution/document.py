"""Shared collaborative documents and edit tracking.

The real deployments directed workers to a shared Google Doc in editing
mode so edits could be monitored (§5.1.1); Figure 13's second observation
counts those edits.  :class:`SharedDocument` is the simulated equivalent:
segments accumulate quality through edits, and an edit can *override*
a previous one (losing its contribution) — the raw material of edit wars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class Edit:
    """One tracked edit to a document segment."""

    worker_id: str
    time_hours: float
    segment: int
    delta_quality: float
    overridden: bool = False


class SharedDocument:
    """A segmented document whose quality grows with (surviving) edits."""

    def __init__(self, segments: int, base_quality: float = 0.0):
        if segments < 1:
            raise ValueError("segments must be >= 1")
        if not 0.0 <= base_quality <= 1.0:
            raise ValueError("base_quality must lie in [0, 1]")
        self.segments = segments
        self.base_quality = base_quality
        self.edits: list[Edit] = []

    def apply_edit(self, edit: Edit) -> None:
        """Record one edit."""
        if not 0 <= edit.segment < self.segments:
            raise ValueError(
                f"segment {edit.segment} outside document of {self.segments} segments"
            )
        self.edits.append(edit)

    def override(self, edit: Edit) -> None:
        """Mark an edit overridden: its quality contribution is lost."""
        edit.overridden = True

    @property
    def edit_count(self) -> int:
        """Total number of edits (the Figure 13 telemetry)."""
        return len(self.edits)

    @property
    def overridden_count(self) -> int:
        return sum(1 for e in self.edits if e.overridden)

    def segment_quality(self, segment: int) -> float:
        """Quality of one segment: base plus surviving deltas, capped at 1."""
        total = self.base_quality + sum(
            e.delta_quality for e in self.edits if e.segment == segment and not e.overridden
        )
        return float(min(max(total, 0.0), 1.0))

    def quality(self) -> float:
        """Document quality: mean over segments."""
        return float(
            np.mean([self.segment_quality(s) for s in range(self.segments)])
        )

    def edits_by_segment(self) -> dict[int, list[Edit]]:
        """Edits grouped by segment (conflict detection uses this)."""
        grouped: dict[int, list[Edit]] = {s: [] for s in range(self.segments)}
        for edit in self.edits:
            grouped[edit.segment].append(edit)
        return grouped
