"""The unified recommendation engine — every entry point's one seam.

The seed wired ``BatchStrat`` + ``ADPaRExact`` + ``WorkforceComputer``
separately in the Aggregator, the streaming ledger, the CLI, the platform
simulator and each experiment runner.  :class:`RecommendationEngine` is
the single service layer they all route through instead:

* a pluggable planner backend (:mod:`repro.engine.registry`) decides
  which requests to satisfy,
* a shared :class:`~repro.engine.cache.EngineCache` memoizes per-request
  workforce aggregates and ADPaR fallbacks across calls and engines,
* :meth:`resolve` reproduces the legacy Aggregator contract
  decision-for-decision (differential-tested), and
* :meth:`open_session` subsumes the streaming ledger: admission,
  revocation and deferred-retry live in one place.
"""

from __future__ import annotations

from repro.core.aggregator import (
    AggregatorReport,
    RequestResolution,
    ResolutionStatus,
)
from repro.core.adpar import ADPaRResult
from repro.core.batchstrat import BatchOutcome
from repro.core.objectives import ObjectiveSpec, validate_objective
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.engine.cache import CacheStats, CachingWorkforceComputer, EngineCache
from repro.engine.registry import (
    Planner,
    PlannerContext,
    PlannerRegistry,
    default_registry,
)
from repro.engine.session import EngineSession
from repro.exceptions import InfeasibleRequestError
from repro.modeling.availability import AvailabilityDistribution
from repro.utils.validation import check_fraction


class RecommendationEngine:
    """Facade over planning, workforce estimation, and ADPaR fallback.

    Parameters
    ----------
    ensemble:
        Candidate strategy profiles.
    availability:
        Expected workforce fraction in ``[0, 1]``, or an
        :class:`AvailabilityDistribution` (its expectation is used,
        matching §2.1's "StratRec works with expected values").
    objective:
        Default platform objective for :meth:`plan`/:meth:`resolve`.
    aggregation, workforce_mode, eligibility:
        Forwarded to the workforce computer (§3.2).
    planner:
        Default planner backend name (see :func:`default_registry`).
    planner_options:
        Backend-specific options (e.g. ``{"resolution": 8192}`` for
        ``payoff-dp``); passed to every backend this engine instantiates,
        including per-call ``plan(planner=...)`` overrides — backends
        ignore keys they do not understand.
    cache:
        A shared :class:`EngineCache`; a private one is created when
        omitted.  Pass one cache to many engines to share work.
    registry:
        Planner registry; the process-wide default when omitted.
    """

    def __init__(
        self,
        ensemble: StrategyEnsemble,
        availability: "float | AvailabilityDistribution",
        objective: ObjectiveSpec = "throughput",
        aggregation: str = "sum",
        workforce_mode: str = "paper",
        eligibility: str = "pool",
        planner: str = "batch-greedy",
        planner_options: "dict | None" = None,
        cache: "EngineCache | None" = None,
        registry: "PlannerRegistry | None" = None,
    ):
        if isinstance(availability, AvailabilityDistribution):
            availability = availability.expectation()
        validate_objective(objective)
        self.ensemble = ensemble
        self.availability = check_fraction("availability", float(availability))
        self.objective = objective
        self.aggregation = aggregation
        self.workforce_mode = workforce_mode
        self.eligibility = eligibility
        self.cache = cache if cache is not None else EngineCache()
        self.registry = registry if registry is not None else default_registry()
        self.planner_name = planner
        self._planner_options = dict(planner_options or {})
        self._computer = CachingWorkforceComputer(
            ensemble,
            self.cache,
            mode=workforce_mode,
            aggregation=aggregation,
            eligibility=eligibility,
            availability=self.availability,
        )
        self._context = PlannerContext(
            ensemble=ensemble,
            availability=self.availability,
            aggregation=aggregation,
            workforce_mode=workforce_mode,
            eligibility=eligibility,
            computer=self._computer,
        )
        self._planners: "dict[str, Planner]" = {}
        # Fail fast on an unknown default backend.
        self._planner_for(planner)

    # ------------------------------------------------------------- accessors
    @property
    def computer(self) -> CachingWorkforceComputer:
        """The engine's (caching) workforce computer."""
        return self._computer

    @property
    def stats(self) -> CacheStats:
        """Cache hit/miss counters for this engine's shared cache."""
        return self.cache.stats

    def _planner_for(self, name: "str | None" = None) -> Planner:
        name = name if name is not None else self.planner_name
        if name not in self._planners:
            # Options reach every backend (per-call overrides included);
            # backends ignore keys they do not understand.
            self._planners[name] = self.registry.create(
                name, self._context, self._planner_options
            )
        return self._planners[name]

    # ------------------------------------------------------------------ plan
    def plan(
        self,
        requests: "list[DeploymentRequest]",
        objective: "ObjectiveSpec | None" = None,
        planner: "str | None" = None,
    ) -> BatchOutcome:
        """Run one planner backend over a batch (no ADPaR routing).

        ``planner`` overrides the engine default per call; all backends
        share this engine's workforce cache, so comparing several over the
        same batch pays for model inversion once.
        """
        objective = self.objective if objective is None else objective
        return self._planner_for(planner).plan(requests, objective=objective)

    # --------------------------------------------------------------- resolve
    def resolve(
        self,
        requests: "list[DeploymentRequest]",
        objective: "ObjectiveSpec | None" = None,
        planner: "str | None" = None,
    ) -> AggregatorReport:
        """Serve a batch end-to-end: plan, then ADPaR for the rest.

        This is the legacy ``Aggregator.process`` contract: every request
        resolves to SATISFIED (with its k strategies), ALTERNATIVE (with
        ADPaR's closest parameters), or INFEASIBLE.
        """
        ids = [r.request_id for r in requests]
        if len(set(ids)) != len(ids):
            raise ValueError("request ids within a batch must be unique")
        objective = self.objective if objective is None else objective
        batch = self.plan(requests, objective=objective, planner=planner)
        satisfied_by_id = {rec.request_id: rec for rec in batch.satisfied}
        resolutions: list[RequestResolution] = []
        for request in requests:
            if request.request_id in satisfied_by_id:
                rec = satisfied_by_id[request.request_id]
                resolutions.append(
                    RequestResolution(
                        request=request,
                        status=ResolutionStatus.SATISFIED,
                        strategy_names=rec.strategy_names,
                        params=request.params,
                    )
                )
                continue
            resolutions.append(self._resolve_via_adpar(request))
        return AggregatorReport(
            availability=self.availability,
            objective=objective,
            batch=batch,
            resolutions=tuple(resolutions),
        )

    def resolve_one(self, request: DeploymentRequest) -> RequestResolution:
        """Resolve a single request (a batch of one)."""
        return self.resolve([request]).resolutions[0]

    def _resolve_via_adpar(self, request: DeploymentRequest) -> RequestResolution:
        try:
            result = self.recommend_alternative(request)
        except InfeasibleRequestError:
            return RequestResolution(
                request=request,
                status=ResolutionStatus.INFEASIBLE,
                strategy_names=(),
                params=request.params,
            )
        return RequestResolution(
            request=request,
            status=ResolutionStatus.ALTERNATIVE,
            strategy_names=result.strategy_names,
            params=result.alternative,
            distance=result.distance,
            adpar=result,
        )

    # ----------------------------------------------------------------- adpar
    def recommend_alternative(
        self, request: "DeploymentRequest | tuple", k: "int | None" = None
    ) -> ADPaRResult:
        """Closest alternative parameters admitting ``k`` strategies (§4).

        Results are cached by (ensemble, availability, params, k).
        """
        if not isinstance(request, DeploymentRequest):
            # Bare TriParams: wrap so the cache key carries (params, k).
            if k is None:
                raise ValueError("k is required when passing bare TriParams")
            request = DeploymentRequest("adhoc", request, k=int(k))
        elif k is not None and k != request.k:
            request = DeploymentRequest(
                request.request_id,
                request.params,
                k=int(k),
                task_type=request.task_type,
                payoff=request.payoff,
            )
        return self.cache.adpar_solve(self.ensemble, self.availability, request)

    # --------------------------------------------------------------- session
    def open_session(self) -> EngineSession:
        """Open a streaming session over this engine's workforce ledger.

        The session admits requests one at a time against the remaining
        availability, answers non-fitting requests with ADPaR
        alternatives, and handles revocation and deferred-retry in one
        place (the paper's §7 open problem).
        """
        return EngineSession(self)
