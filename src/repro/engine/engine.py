"""The unified recommendation engine — every entry point's one seam.

The seed wired ``BatchStrat`` + ``ADPaRExact`` + ``WorkforceComputer``
separately in the Aggregator, the streaming ledger, the CLI, the platform
simulator and each experiment runner.  :class:`RecommendationEngine` is
the single service layer they all route through instead:

* a pluggable planner backend (:mod:`repro.engine.registry`) decides
  which requests to satisfy,
* a pluggable ADPaR solver backend (:mod:`repro.engine.solvers`) answers
  the rest with alternative parameters — scalar or batch
  (:meth:`~RecommendationEngine.recommend_alternatives`),
* a shared :class:`~repro.engine.cache.EngineCache` memoizes per-request
  workforce aggregates, ADPaR fallbacks, and the relaxation geometry
  across calls and engines,
* :meth:`resolve` reproduces the legacy Aggregator contract
  decision-for-decision (differential-tested), and
* :meth:`open_session` subsumes the streaming ledger: admission,
  revocation and deferred-retry live in one place.
"""

from __future__ import annotations

from repro.core.aggregator import (
    AggregatorReport,
    RequestResolution,
    ResolutionStatus,
)
from repro.core.adpar import ADPaRResult
from repro.core.batchstrat import BatchOutcome
from repro.core.objectives import ObjectiveSpec, validate_objective
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.core.params import TriParams
from repro.engine.cache import CacheStats, CachingWorkforceComputer, EngineCache
from repro.engine.registry import (
    Planner,
    PlannerContext,
    PlannerRegistry,
    default_registry,
)
from repro.engine.session import EngineSession
from repro.engine.solvers import (
    AdparSolver,
    SolverContext,
    SolverRegistry,
    default_solver_registry,
)
from repro.exceptions import InfeasibleRequestError
from repro.modeling.availability import AvailabilityDistribution
from repro.utils.validation import check_fraction


class RecommendationEngine:
    """Facade over planning, workforce estimation, and ADPaR fallback.

    Parameters
    ----------
    ensemble:
        Candidate strategy profiles.
    availability:
        Expected workforce fraction in ``[0, 1]``, or an
        :class:`AvailabilityDistribution` (its expectation is used,
        matching §2.1's "StratRec works with expected values").
    objective:
        Default platform objective for :meth:`plan`/:meth:`resolve`.
    aggregation, workforce_mode, eligibility:
        Forwarded to the workforce computer (§3.2).
    planner:
        Default planner backend name (see :func:`default_registry`).
    planner_options:
        Backend-specific options (e.g. ``{"resolution": 8192}`` for
        ``payoff-dp``); passed to every backend this engine instantiates,
        including per-call ``plan(planner=...)`` overrides — backends
        ignore keys they do not understand.
    solver:
        Default ADPaR solver backend name answering requests the planner
        could not satisfy (see
        :func:`~repro.engine.solvers.default_solver_registry`):
        ``adpar-exact`` (default), ``adpar-weighted``, ``onedim``,
        ``rtree``, ``bruteforce``.
    solver_options:
        Solver-backend options (e.g. ``{"norm": "l1", "weights":
        (2, 1, 1)}`` for ``adpar-weighted``); part of the cache key, so
        engines with different options never share ADPaR results.
    cache:
        A shared :class:`EngineCache`; a private one is created when
        omitted.  Pass one cache to many engines to share work.
    registry:
        Planner registry; the process-wide default when omitted.
    solver_registry:
        ADPaR solver registry; the process-wide default when omitted.
    """

    def __init__(
        self,
        ensemble: StrategyEnsemble,
        availability: "float | AvailabilityDistribution",
        objective: ObjectiveSpec = "throughput",
        aggregation: str = "sum",
        workforce_mode: str = "paper",
        eligibility: str = "pool",
        planner: str = "batch-greedy",
        planner_options: "dict | None" = None,
        solver: str = "adpar-exact",
        solver_options: "dict | None" = None,
        cache: "EngineCache | None" = None,
        registry: "PlannerRegistry | None" = None,
        solver_registry: "SolverRegistry | None" = None,
    ):
        if isinstance(availability, AvailabilityDistribution):
            availability = availability.expectation()
        validate_objective(objective)
        self.ensemble = ensemble
        self.availability = check_fraction("availability", float(availability))
        self.objective = objective
        self.aggregation = aggregation
        self.workforce_mode = workforce_mode
        self.eligibility = eligibility
        self.cache = cache if cache is not None else EngineCache()
        self.registry = registry if registry is not None else default_registry()
        self.solver_registry = (
            solver_registry
            if solver_registry is not None
            else default_solver_registry()
        )
        self.planner_name = planner
        self._planner_options = dict(planner_options or {})
        self.solver_name = solver
        self._solver_options = dict(solver_options or {})
        self._computer = CachingWorkforceComputer(
            ensemble,
            self.cache,
            mode=workforce_mode,
            aggregation=aggregation,
            eligibility=eligibility,
            availability=self.availability,
        )
        self._context = PlannerContext(
            ensemble=ensemble,
            availability=self.availability,
            aggregation=aggregation,
            workforce_mode=workforce_mode,
            eligibility=eligibility,
            computer=self._computer,
        )
        self._planners: "dict[str, Planner]" = {}
        # Fail fast on unknown default backends (and, for the solver,
        # invalid options such as a bad norm or negative weights).
        self._planner_for(planner)
        self._solver_for(solver)

    # ------------------------------------------------------------- accessors
    @property
    def computer(self) -> CachingWorkforceComputer:
        """The engine's (caching) workforce computer."""
        return self._computer

    @property
    def stats(self) -> CacheStats:
        """Cache hit/miss counters for this engine's shared cache."""
        return self.cache.stats

    def _planner_for(self, name: "str | None" = None) -> Planner:
        name = name if name is not None else self.planner_name
        if name not in self._planners:
            # Options reach every backend (per-call overrides included);
            # backends ignore keys they do not understand.
            self._planners[name] = self.registry.create(
                name, self._context, self._planner_options
            )
        return self._planners[name]

    def _solver_for(self, name: "str | None" = None) -> AdparSolver:
        """The (cache-held) ADPaR solver backend for this engine."""
        name = name if name is not None else self.solver_name
        return self.cache.adpar_solver(
            self.ensemble,
            self.availability,
            solver=name,
            options=self._solver_options,
            registry=self.solver_registry,
        )

    # ------------------------------------------------------------------ plan
    def plan(
        self,
        requests: "list[DeploymentRequest]",
        objective: "ObjectiveSpec | None" = None,
        planner: "str | None" = None,
    ) -> BatchOutcome:
        """Run one planner backend over a batch (no ADPaR routing).

        ``planner`` overrides the engine default per call; all backends
        share this engine's workforce cache, so comparing several over the
        same batch pays for model inversion once.
        """
        objective = self.objective if objective is None else objective
        return self._planner_for(planner).plan(requests, objective=objective)

    # --------------------------------------------------------------- resolve
    def resolve(
        self,
        requests: "list[DeploymentRequest]",
        objective: "ObjectiveSpec | None" = None,
        planner: "str | None" = None,
        solver: "str | None" = None,
    ) -> AggregatorReport:
        """Serve a batch end-to-end: plan, then ADPaR for the rest.

        This is the legacy ``Aggregator.process`` contract: every request
        resolves to SATISFIED (with its k strategies), ALTERNATIVE (with
        ADPaR's closest parameters), or INFEASIBLE.  The unsatisfied
        remainder is solved through the solver backend's batch path, so
        the relaxation geometry is paid for once per batch.
        """
        return self.resolve_many(
            [requests], objective=objective, planner=planner, solver=solver
        )[0]

    def resolve_many(
        self,
        batches: "list[list[DeploymentRequest]]",
        objective: "ObjectiveSpec | None" = None,
        planner: "str | None" = None,
        solver: "str | None" = None,
    ) -> list[AggregatorReport]:
        """Resolve several *independent* batches in one merged ADPaR pass.

        Report-for-report identical to ``[resolve(b) for b in batches]``
        (property-pinned): planning stays per batch — a planner decides
        against each batch's own availability budget, so merging there
        would change decisions — but every batch's unsatisfied remainder
        is solved through **one** :meth:`~repro.engine.cache.EngineCache
        .adpar_solve_batch` call, amortizing the relaxation geometry
        across all batches.  This is the vectorized pass the cross-client
        request coalescer (:mod:`repro.api.coalescer`) fans concurrent
        ``resolve`` calls into.  Request ids must be unique *within* each
        batch only; different batches may reuse ids freely (ADPaR is
        keyed by parameters, not identity).
        """
        for requests in batches:
            ids = [r.request_id for r in requests]
            if len(set(ids)) != len(ids):
                raise ValueError("request ids within a batch must be unique")
        objective = self.objective if objective is None else objective
        outcomes = [
            self.plan(list(requests), objective=objective, planner=planner)
            for requests in batches
        ]
        satisfied_maps = [
            {rec.request_id: rec for rec in batch.satisfied}
            for batch in outcomes
        ]
        unsatisfied_per_batch = [
            [r for r in requests if r.request_id not in satisfied]
            for requests, satisfied in zip(batches, satisfied_maps)
        ]
        merged = [r for group in unsatisfied_per_batch for r in group]
        solved = iter(self._alternatives_for(merged, solver=solver))
        reports: list[AggregatorReport] = []
        for requests, batch, satisfied_by_id, unsatisfied in zip(
            batches, outcomes, satisfied_maps, unsatisfied_per_batch
        ):
            alternatives = {
                r.request_id: next(solved) for r in unsatisfied
            }
            reports.append(
                self._assemble_report(
                    requests, objective, batch, satisfied_by_id, alternatives
                )
            )
        return reports

    def _assemble_report(
        self, requests, objective, batch, satisfied_by_id, alternatives
    ) -> AggregatorReport:
        resolutions: list[RequestResolution] = []
        for request in requests:
            if request.request_id in satisfied_by_id:
                rec = satisfied_by_id[request.request_id]
                resolutions.append(
                    RequestResolution(
                        request=request,
                        status=ResolutionStatus.SATISFIED,
                        strategy_names=rec.strategy_names,
                        params=request.params,
                    )
                )
                continue
            result = alternatives[request.request_id]
            if result is None:
                resolutions.append(
                    RequestResolution(
                        request=request,
                        status=ResolutionStatus.INFEASIBLE,
                        strategy_names=(),
                        params=request.params,
                    )
                )
                continue
            resolutions.append(
                RequestResolution(
                    request=request,
                    status=ResolutionStatus.ALTERNATIVE,
                    strategy_names=result.strategy_names,
                    params=result.alternative,
                    distance=result.distance,
                    adpar=result,
                )
            )
        return AggregatorReport(
            availability=self.availability,
            objective=objective,
            batch=batch,
            resolutions=tuple(resolutions),
        )

    def resolve_one(self, request: DeploymentRequest) -> RequestResolution:
        """Resolve a single request (a batch of one)."""
        return self.resolve([request]).resolutions[0]

    # ----------------------------------------------------------------- adpar
    def _as_adpar_request(
        self, request: "DeploymentRequest | TriParams", k: "int | None"
    ) -> DeploymentRequest:
        if not isinstance(request, DeploymentRequest):
            # Bare TriParams: wrap so the cache key carries (params, k).
            if k is None:
                raise ValueError("k is required when passing bare TriParams")
            return DeploymentRequest("adhoc", request, k=int(k))
        if k is not None and k != request.k:
            return DeploymentRequest(
                request.request_id,
                request.params,
                k=int(k),
                task_type=request.task_type,
                payoff=request.payoff,
            )
        return request

    def _alternatives_for(
        self,
        requests: "list[DeploymentRequest]",
        solver: "str | None" = None,
    ) -> "list[ADPaRResult | None]":
        """Cached batch ADPaR; ``None`` marks an infeasible request."""
        return self.cache.adpar_solve_batch(
            self.ensemble,
            self.availability,
            requests,
            solver=solver if solver is not None else self.solver_name,
            options=self._solver_options,
            registry=self.solver_registry,
        )

    def recommend_alternative(
        self,
        request: "DeploymentRequest | TriParams",
        k: "int | None" = None,
        solver: "str | None" = None,
    ) -> ADPaRResult:
        """Closest alternative parameters admitting ``k`` strategies (§4).

        ``solver`` overrides the engine's default backend per call.
        Results are cached by (ensemble, availability, params, k, solver,
        options).
        """
        request = self._as_adpar_request(request, k)
        return self.cache.adpar_solve(
            self.ensemble,
            self.availability,
            request,
            solver=solver if solver is not None else self.solver_name,
            options=self._solver_options,
            registry=self.solver_registry,
        )

    def recommend_alternative_at(
        self,
        request: "DeploymentRequest | TriParams",
        availability: float,
        k: "int | None" = None,
        solver: str = "adpar-incremental",
    ) -> ADPaRResult:
        """Closest alternative at a *live* availability, via the delta path.

        The streaming counterpart of :meth:`recommend_alternative`:
        ``availability`` is whatever the caller's ledger says right now
        (e.g. an :class:`~repro.engine.session.EngineSession`'s
        remaining workforce after reserve/complete/revoke ticks), not
        the engine's configured expectation.  The space comes from the
        cache's :class:`~repro.engine.cache.IncrementalSpaceCache` —
        repaired from the previous tick's head on recycled buffers —
        and the default backend is the index-pruned incremental sweep;
        both are bitwise-identical to a cold ``adpar-exact`` solve at
        the same availability.  Results are not memoized: tick
        availabilities are effectively unique, so caching them would
        only churn the LRU.
        """
        request = self._as_adpar_request(request, k)
        return self._solver_at(availability, solver).solve(request)

    def recommend_alternatives_at(
        self,
        requests: "list[DeploymentRequest | TriParams]",
        availability: float,
        k: "int | None" = None,
        solver: str = "adpar-incremental",
    ) -> list[ADPaRResult]:
        """Batch :meth:`recommend_alternative_at` over one shared space."""
        prepared = [self._as_adpar_request(r, k) for r in requests]
        return self._solver_at(availability, solver).solve_batch(prepared)

    def _solver_at(self, availability: float, solver: str) -> AdparSolver:
        """An ephemeral backend over the chain-head space at a tick."""
        space = self.cache.relaxation_space_at(self.ensemble, availability)
        context = SolverContext(
            ensemble=self.ensemble,
            availability=float(availability),
            space=space,
        )
        return self.solver_registry.create(solver, context, self._solver_options)

    def recommend_alternatives(
        self,
        requests: "list[DeploymentRequest | TriParams]",
        k: "int | None" = None,
        solver: "str | None" = None,
    ) -> list[ADPaRResult]:
        """Batch :meth:`recommend_alternative` over shared geometry (§4).

        Results are identical — request for request — to the scalar
        method, but cache misses are routed through the backend's
        :meth:`~repro.engine.solvers.AdparSolver.solve_batch`, which
        amortizes the relaxation geometry across the whole batch (a
        5-60x speedup for ``adpar-exact`` on Figure-18-scale ensembles;
        ``benchmarks/bench_adpar_solvers.py`` pins it).  ``k``, when
        given, overrides every request's own ``k``.  Raises
        :class:`InfeasibleRequestError` if any request is infeasible,
        like the scalar path; callers that want per-request verdicts
        should resolve through :meth:`resolve`.
        """
        prepared = [self._as_adpar_request(r, k) for r in requests]
        results = self._alternatives_for(prepared, solver=solver)
        for request, result in zip(prepared, results):
            if result is None:
                raise InfeasibleRequestError(
                    f"cannot admit k={request.k} strategies: "
                    f"only {len(self.ensemble)} exist"
                )
        return results  # type: ignore[return-value]

    # --------------------------------------------------------------- session
    def open_session(self) -> EngineSession:
        """Open a streaming session over this engine's workforce ledger.

        The session admits requests one at a time (or per arrival burst
        through :meth:`EngineSession.submit_many`, which runs the model
        inversions and ADPaR fallbacks as two vectorized batch passes)
        against the remaining availability, answers non-fitting requests
        with ADPaR alternatives, and handles revocation and
        deferred-retry in one place (the paper's §7 open problem).
        Repeated request shapes are served from this engine's shared
        workforce cache, so resubmissions skip model inversion entirely.
        """
        return EngineSession(self)
