"""Pluggable planner backends for the recommendation engine.

A *planner* answers one question — which subset of a batch to satisfy,
and with which strategies — behind a single protocol: ``plan(requests,
objective) -> BatchOutcome``.  The registry maps stable backend names to
factories so callers (the engine, the CLI's ``--planner`` flag, future
sharded/async frontends) can swap optimizers without rewiring:

========================  ====================================================
``batch-greedy``          BatchStrat (Algorithm 1; throughput-exact,
                          pay-off 1/2-approximate) — the default.
``payoff-dp``             Pseudo-polynomial knapsack DP (exact up to
                          weight discretization).
``baseline-greedy``       BaselineG: density greedy without the backstop.
``batch-bruteforce``      Exhaustive subset enumeration (exact, m <= 24).
========================  ====================================================

All four share the context's :class:`WorkforceComputer`, so one engine
evaluating several backends over the same batch pays for model inversion
once.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Protocol

from repro.baselines.batch_bruteforce import batch_brute_force
from repro.baselines.batch_greedy import BaselineG
from repro.core.batchstrat import BatchOutcome, BatchStrat
from repro.core.objectives import ObjectiveSpec
from repro.core.payoff_dp import payoff_dynamic_program
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.core.workforce import WorkforceComputer
from repro.exceptions import UnknownPlannerError


@dataclass(frozen=True)
class PlannerContext:
    """Everything a planner backend needs to instantiate itself."""

    ensemble: StrategyEnsemble
    availability: float
    aggregation: str = "sum"
    workforce_mode: str = "paper"
    eligibility: str = "pool"
    computer: "WorkforceComputer | None" = None


class Planner(Protocol):
    """The one seam every batch optimizer sits behind."""

    name: str

    def plan(
        self,
        requests: "list[DeploymentRequest]",
        objective: ObjectiveSpec = "throughput",
    ) -> BatchOutcome:
        """Select and equip the subset of ``requests`` to satisfy."""
        ...


PlannerFactory = Callable[[PlannerContext, dict], "Planner"]


class _BatchStratPlanner:
    name = "batch-greedy"

    def __init__(self, context: PlannerContext, options: dict):
        self._solver = BatchStrat(
            context.ensemble,
            context.availability,
            aggregation=context.aggregation,
            workforce_mode=context.workforce_mode,
            eligibility=context.eligibility,
            computer=context.computer,
        )

    def plan(self, requests, objective="throughput"):
        return self._solver.run(requests, objective=objective)


class _BaselineGreedyPlanner:
    name = "baseline-greedy"

    def __init__(self, context: PlannerContext, options: dict):
        self._solver = BaselineG(
            context.ensemble,
            context.availability,
            aggregation=context.aggregation,
            workforce_mode=context.workforce_mode,
            eligibility=context.eligibility,
            computer=context.computer,
        )

    def plan(self, requests, objective="throughput"):
        return self._solver.run(requests, objective=objective)


class _PayoffDPPlanner:
    name = "payoff-dp"

    def __init__(self, context: PlannerContext, options: dict):
        self._context = context
        self._resolution = int(options.get("resolution", 4096))

    def plan(self, requests, objective="payoff"):
        context = self._context
        return payoff_dynamic_program(
            context.ensemble,
            requests,
            context.availability,
            objective=objective,
            resolution=self._resolution,
            aggregation=context.aggregation,
            workforce_mode=context.workforce_mode,
            eligibility=context.eligibility,
            computer=context.computer,
        )


class _BruteForcePlanner:
    name = "batch-bruteforce"

    def __init__(self, context: PlannerContext, options: dict):
        self._context = context

    def plan(self, requests, objective="throughput"):
        context = self._context
        return batch_brute_force(
            context.ensemble,
            requests,
            context.availability,
            objective=objective,
            aggregation=context.aggregation,
            workforce_mode=context.workforce_mode,
            eligibility=context.eligibility,
            computer=context.computer,
        )


class PlannerRegistry:
    """Name → planner-factory mapping with typed error handling."""

    def __init__(self):
        self._factories: "dict[str, PlannerFactory]" = {}
        self._descriptions: dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: PlannerFactory,
        description: str = "",
        replace: bool = False,
    ) -> None:
        """Register a backend; re-registering a name requires ``replace``."""
        if not name:
            raise ValueError("planner name must be non-empty")
        if name in self._factories and not replace:
            raise ValueError(f"planner {name!r} is already registered")
        self._factories[name] = factory
        self._descriptions[name] = description

    def names(self) -> list[str]:
        """Registered backend names, sorted."""
        return sorted(self._factories)

    def describe(self, name: str) -> str:
        if name not in self._factories:
            raise UnknownPlannerError(name)
        return self._descriptions.get(name, "")

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(
        self,
        name: str,
        context: PlannerContext,
        options: "dict | None" = None,
    ) -> Planner:
        """Instantiate a backend for one engine context."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise UnknownPlannerError(
                f"unknown planner backend {name!r}; registered: {known}"
            ) from None
        return factory(context, dict(options or {}))


def _builtin_registry() -> PlannerRegistry:
    registry = PlannerRegistry()
    registry.register(
        "batch-greedy",
        _BatchStratPlanner,
        "BatchStrat greedy + backstop (Algorithm 1); the default",
    )
    registry.register(
        "payoff-dp",
        _PayoffDPPlanner,
        "discretized 0/1-knapsack DP; exact up to resolution",
    )
    registry.register(
        "baseline-greedy",
        _BaselineGreedyPlanner,
        "BaselineG density greedy without the backstop (§5.2.1)",
    )
    registry.register(
        "batch-bruteforce",
        _BruteForcePlanner,
        "exhaustive subset enumeration; exact, m <= 24",
    )
    return registry


_DEFAULT_REGISTRY = _builtin_registry()


def default_registry() -> PlannerRegistry:
    """The process-wide registry with the built-in backends."""
    return _DEFAULT_REGISTRY
