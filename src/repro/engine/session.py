"""Engine sessions: the streaming ledger behind one seam (§7 extension).

An :class:`EngineSession` is the online counterpart of
:meth:`RecommendationEngine.resolve`: requests arrive one at a time, a
workforce ledger tracks remaining availability, admitted requests hold a
reservation until completed or revoked, and requests that do not fit are
answered with ADPaR alternatives produced by the owning engine's
configured solver backend (``solver=``/``solver_options=`` on the
engine), so a session opened on an ``onedim`` or ``adpar-weighted``
engine answers with that backend.  Decisions are identical to the legacy
``StreamingAggregator`` (differential-tested); on top of it the session
remembers DEFERRED requests and can retry them once capacity frees —
previously every caller re-implemented that loop.

The streaming hot path is vectorized (the "fully dynamic stream" the
paper's §7 leaves open, served at batch-path speed):

* :meth:`submit_many` admits an arrival burst through one broadcasted
  :meth:`~repro.core.workforce.WorkforceComputer.aggregate_all` pass and
  one batch ADPaR call for the requests that fall to the ALTERNATIVE
  branch — decisions, counters, and ledger state are pinned identical to
  the equivalent :meth:`submit` loop
  (``tests/property/test_streaming_equivalence.py``).
* Per-request model inversion is memoized in the engine's shared
  :class:`~repro.engine.cache.EngineCache` keyed by (params, k,
  workforce configuration), so resubmitted request shapes — the common
  case on a platform serving templated deployments — skip inversion
  entirely.
* Every DEFERRED request is queued as a :class:`DeferredEntry` carrying
  its already-computed aggregate, so :meth:`retry_deferred` is O(1) per
  entry in model work, and a min-requirement early exit makes a drain
  against insufficient capacity O(1) total.

One-shot batches go through :meth:`resolve_batch`, so a session is the
single API surface for both batch and streaming traffic.
"""

from __future__ import annotations

import math
import threading
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.aggregator import AggregatorReport
from repro.core.request import DeploymentRequest
from repro.core.streaming import StreamDecision, StreamStatus
from repro.core.workforce import RequestWorkforce
from repro.exceptions import InfeasibleRequestError
from repro.utils.lockdebug import maybe_guarded

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.core.adpar import ADPaRResult
    from repro.engine.engine import RecommendationEngine

_EPS = 1e-9


@dataclass(frozen=True)
class SessionState:
    """A point-in-time copy of one session's ledger (crash recovery).

    Everything :meth:`EngineSession.restore` needs to rebuild a live
    session bitwise: counters and reservations verbatim, the deferred
    queue in arrival order (the carried aggregates are *recomputed* on
    restore — they are a pure function of (request, engine), so the
    recomputation is exact), and the retry floor **verbatim** rather
    than recomputed: removals may leave the floor conservatively below
    the true minimum, and the retry early-exit is observable (``[]``
    versus a full re-deferring pass), so a "tightened" floor would
    change post-restore decision streams.  ``deferred_floor=None``
    encodes the empty-queue sentinel ``math.inf``.
    """

    availability: float
    used: float
    deferred_floor: "float | None"
    admitted: int
    revoked: int
    completed: int
    reserved: "tuple[StreamDecision, ...]"
    deferred: "tuple[DeploymentRequest, ...]"


@dataclass(frozen=True)
class DeferredEntry:
    """One deferred request plus its already-computed workforce aggregate.

    Carrying the aggregate makes :meth:`EngineSession.retry_deferred` pure
    ledger arithmetic — O(1) per entry, no model inversion.  The aggregate
    is valid for exactly this request object's (params, k): a
    resubmission with revised parameters replaces the whole entry, so a
    stale aggregate can never be replayed.
    """

    request: DeploymentRequest
    need: RequestWorkforce


class EngineSession:
    """Online admission with a workforce ledger, revocation, and retry.

    Session-affine concurrency: every ledger mutator (``submit``,
    ``submit_many``, ``retry_deferred``, ``complete``, ``revoke``) takes
    this session's own :attr:`lock`, so concurrent callers serialize *per
    session*, never globally — two sessions over the same engine admit in
    parallel.  The lock is reentrant so a caller can wrap a multi-step
    invariant (e.g. validate-then-submit) in ``with session.lock:``
    without deadlocking on the methods' own acquisition.
    """

    def __init__(self, engine: "RecommendationEngine"):
        self.engine = engine
        self.availability = engine.availability
        self.lock = maybe_guarded(threading.RLock(), "EngineSession.lock")
        self._computer = engine.computer
        self._reserved: "dict[str, StreamDecision]" = {}
        self._deferred: "dict[str, DeferredEntry]" = {}
        # Lower bound on the smallest deferred requirement.  Insertions
        # keep it tight; removals may leave it conservatively low (never
        # high), so the retry early-exit can only skip provably futile
        # drains.  Exact again after every full retry pass.
        self._deferred_floor = math.inf
        self._used = 0.0
        self.admitted_count = 0
        self.revoked_count = 0
        self.completed_count = 0

    # ----------------------------------------------------------------- state
    @property
    def remaining(self) -> float:
        """Workforce still unreserved."""
        return max(self.availability - self._used, 0.0)

    @property
    def active(self) -> "dict[str, StreamDecision]":
        """Currently admitted (not yet completed/revoked) requests."""
        return dict(self._reserved)

    @property
    def deferred(self) -> "list[DeploymentRequest]":
        """Requests answered DEFERRED, in arrival order, awaiting retry."""
        return [entry.request for entry in self._deferred.values()]

    @property
    def deferred_entries(self) -> "list[DeferredEntry]":
        """Deferred queue entries (request + carried aggregate), in order."""
        return list(self._deferred.values())

    def utilization(self) -> float:
        """Reserved fraction of the availability budget."""
        if self.availability == 0:
            return 0.0
        return self._used / self.availability

    # -------------------------------------------------------------- snapshot
    def snapshot(self) -> SessionState:
        """Copy the ledger for the decision journal's checkpoints."""
        with self.lock:
            return SessionState(
                availability=self.availability,
                used=self._used,
                deferred_floor=(
                    None
                    if math.isinf(self._deferred_floor)
                    else self._deferred_floor
                ),
                admitted=self.admitted_count,
                revoked=self.revoked_count,
                completed=self.completed_count,
                reserved=tuple(self._reserved.values()),
                deferred=tuple(
                    entry.request for entry in self._deferred.values()
                ),
            )

    @classmethod
    def restore(
        cls, engine: "RecommendationEngine", state: SessionState
    ) -> "EngineSession":
        """Rebuild a session from a snapshot, bitwise-equal to the original.

        ``engine`` must carry the identity the snapshot was taken under
        (the service restores by recorded (fingerprint, spec)); deferred
        aggregates are recomputed through it — deterministic in
        (request, engine) — while reservations, counters, and the retry
        floor come back verbatim, so the restored session's future
        decision stream matches the uncrashed session's exactly.
        """
        session = cls(engine)
        if abs(session.availability - state.availability) > _EPS:
            raise ValueError(
                f"snapshot was taken at availability {state.availability}; "
                f"this engine has {session.availability}"
            )
        for decision in state.reserved:
            session._reserved[decision.request.request_id] = decision
        if state.deferred:
            needs = session._computer.aggregate_all(list(state.deferred))
            for request, need in zip(state.deferred, needs):
                session._deferred[request.request_id] = DeferredEntry(
                    request, need
                )
        session._deferred_floor = (
            math.inf if state.deferred_floor is None else state.deferred_floor
        )
        session._used = state.used
        session.admitted_count = state.admitted
        session.revoked_count = state.revoked
        session.completed_count = state.completed
        return session

    # ---------------------------------------------------------------- submit
    def submit(self, request: DeploymentRequest) -> StreamDecision:
        """Process one arriving request against the current ledger."""
        with self.lock:
            if request.request_id in self._reserved:
                raise ValueError(
                    f"request {request.request_id!r} is already active"
                )
            need = self._computer.aggregate(request)
            if self._fits_platform(need):
                return self._admit_or_defer(request, need)
            return self._fallback_decision(
                request, self._solve_alternative(request)
            )

    def submit_many(
        self, requests: "list[DeploymentRequest]"
    ) -> list[StreamDecision]:
        """Admit one arrival burst; identical to the equivalent submit loop.

        The per-request model inversions run as a single broadcasted (and
        cache-backed) ``aggregate_all`` pass, and every request that falls
        to the ALTERNATIVE branch is answered through the engine's batch
        ADPaR path — a burst costs two vectorized passes instead of
        ``2 · len(requests)`` scalar solves.  The ledger walk itself stays
        sequential, so admission order, deferred-queue bookkeeping, and
        duplicate-id errors match :meth:`submit` decision-for-decision.
        """
        if not requests:
            return []
        with self.lock:
            return self._submit_many_locked(list(requests))

    def _submit_many_locked(
        self, requests: "list[DeploymentRequest]"
    ) -> list[StreamDecision]:
        needs = self._computer.aggregate_all(requests)
        # Whether a request lands in the ALTERNATIVE/INFEASIBLE branch
        # depends only on its aggregate, never on the ledger: solve that
        # whole branch in one batch call up front.  Alignment is by
        # occurrence order, so duplicate ids within a burst stay distinct.
        # A request whose id is already reserved makes the walk raise when
        # it is reached (nothing in a burst releases reservations), so
        # nothing past the first such position is ever consumed — don't
        # pay its ADPaR solves.
        reserved = self._reserved
        limit = next(
            (
                i
                for i, request in enumerate(requests)
                if request.request_id in reserved
            ),
            len(requests),
        )
        fits = [self._fits_platform(need) for need in needs]
        fallback = [
            request
            for request, fit in zip(requests[:limit], fits[:limit])
            if not fit
        ]
        solved = iter(self.engine._alternatives_for(fallback) if fallback else ())
        admit_or_defer = self._admit_or_defer
        decisions: list[StreamDecision] = []
        append = decisions.append
        for request, need, fit in zip(requests, needs, fits):
            if request.request_id in reserved:
                raise ValueError(
                    f"request {request.request_id!r} is already active"
                )
            if fit:
                append(admit_or_defer(request, need))
            else:
                append(self._fallback_decision(request, next(solved)))
        return decisions

    # -------------------------------------------------------- decision rules
    def _fits_platform(self, need: RequestWorkforce) -> bool:
        """True iff the request could run on an *empty* platform."""
        return need.feasible and need.requirement <= self.availability + _EPS

    def _admit_or_defer(
        self, request: DeploymentRequest, need: RequestWorkforce
    ) -> StreamDecision:
        """Ledger arithmetic for a request that fits the platform."""
        if need.requirement <= self.remaining + _EPS:
            decision = StreamDecision(
                request=request,
                status=StreamStatus.ADMITTED,
                strategy_names=tuple(
                    self.engine.ensemble.names[i] for i in need.strategy_indices
                ),
                workforce_reserved=need.requirement,
            )
            self._reserved[request.request_id] = decision
            self._used += need.requirement
            self.admitted_count += 1
            self._drop_deferred(request.request_id)
            return decision
        # Would fit an empty platform: defer rather than mutate params.
        self._push_deferred(request, need)
        return StreamDecision(request=request, status=StreamStatus.DEFERRED)

    def _solve_alternative(
        self, request: DeploymentRequest
    ) -> "ADPaRResult | None":
        try:
            return self.engine.recommend_alternative(request)
        except InfeasibleRequestError:
            return None

    def _fallback_decision(
        self, request: DeploymentRequest, result: "ADPaRResult | None"
    ) -> StreamDecision:
        self._drop_deferred(request.request_id)
        if result is None:
            return StreamDecision(request=request, status=StreamStatus.INFEASIBLE)
        return StreamDecision(
            request=request,
            status=StreamStatus.ALTERNATIVE,
            strategy_names=result.strategy_names,
            alternative=result,
        )

    # -------------------------------------------------------- deferred queue
    def _push_deferred(
        self, request: DeploymentRequest, need: RequestWorkforce
    ) -> None:
        # Assignment (not setdefault): a resubmission with revised params
        # must replace the stale entry — aggregate included — while
        # keeping its place in the arrival order.
        self._deferred[request.request_id] = DeferredEntry(request, need)
        if need.requirement < self._deferred_floor:
            self._deferred_floor = need.requirement

    def _drop_deferred(self, request_id: str) -> None:
        if self._deferred.pop(request_id, None) is not None and not self._deferred:
            self._deferred_floor = math.inf

    # ------------------------------------------------------------ lifecycle
    def revoke(self, request_id: str) -> float:
        """Cancel an admitted request; returns the workforce released."""
        with self.lock:
            decision = self._release(request_id)
            self.revoked_count += 1
            return decision.workforce_reserved

    def complete(self, request_id: str) -> float:
        """Mark an admitted request finished; its workforce is released."""
        with self.lock:
            decision = self._release(request_id)
            self.completed_count += 1
            return decision.workforce_reserved

    def _release(self, request_id: str) -> StreamDecision:
        try:
            decision = self._reserved.pop(request_id)
        except KeyError:
            raise KeyError(f"no active reservation for {request_id!r}") from None
        self._used = max(self._used - decision.workforce_reserved, 0.0)
        return decision

    # ----------------------------------------------------------------- retry
    def retry_deferred(self) -> list[StreamDecision]:
        """Resubmit deferred requests (arrival order) against freed capacity.

        Each queue entry carries the aggregate computed when it was
        deferred, so a retry is O(1) ledger arithmetic per entry — no
        model inversion (a deferred request is feasible by construction,
        so the fallback branch is unreachable here).  When even the
        smallest deferred requirement exceeds the remaining capacity the
        drain exits immediately and returns ``[]`` — the queue is
        provably unchanged, so nothing is resubmitted and the call costs
        O(1) total.  Requests that still do not fit stay deferred;
        admitted ones leave the queue.  Returns the fresh decision per
        retried request.
        """
        with self.lock:
            if not self._deferred:
                return []
            if self._deferred_floor > self.remaining + _EPS:
                return []
            # Reset before the pass: re-deferred entries rebuild an exact
            # min.
            self._deferred_floor = math.inf
            decisions: list[StreamDecision] = []
            for entry in list(self._deferred.values()):
                del self._deferred[entry.request.request_id]
                decisions.append(
                    self._admit_or_defer(entry.request, entry.need)
                )
            return decisions

    # ------------------------------------------------------- live geometry
    def alternative_at_remaining(
        self,
        request: DeploymentRequest,
        k: "int | None" = None,
        solver: str = "adpar-incremental",
    ) -> ADPaRResult:
        """Closest alternative at the session's *live* remaining workforce.

        Every reserve/complete/revoke tick moves :attr:`remaining`; this
        answers ADPaR at that moved availability through the engine's
        delta-maintained space chain — each tick's geometry is repaired
        from the previous tick's on recycled buffers instead of rebuilt
        — and the index-pruned incremental backend.  Bitwise-identical
        to a cold ``adpar-exact`` solve at the same availability.
        """
        with self.lock:
            remaining = self.remaining
        return self.engine.recommend_alternative_at(
            request, remaining, k=k, solver=solver
        )

    def alternatives_at_remaining(
        self,
        requests: "list[DeploymentRequest]",
        k: "int | None" = None,
        solver: str = "adpar-incremental",
    ) -> list[ADPaRResult]:
        """Batch :meth:`alternative_at_remaining` over one shared space."""
        with self.lock:
            remaining = self.remaining
        return self.engine.recommend_alternatives_at(
            requests, remaining, k=k, solver=solver
        )

    # ----------------------------------------------------------------- batch
    def resolve_batch(self, requests: "list[DeploymentRequest]") -> AggregatorReport:
        """One-shot batch resolution through the owning engine.

        Batch planning works from the full availability budget (the
        legacy Aggregator contract); it does not debit this session's
        streaming ledger.
        """
        return self.engine.resolve(requests)


def drive_stream(
    session: EngineSession,
    requests: "list[DeploymentRequest]",
    burst_size: int = 64,
    hold_bursts: int = 2,
    schedule: "list[int] | None" = None,
) -> "tuple[list[StreamDecision], int]":
    """Run the canonical high-traffic admission loop over one session.

    The one driver behind the CLI ``stream`` subcommand and the platform
    simulator's ``stream_window``: arrivals are admitted per micro-burst
    through :meth:`EngineSession.submit_many`; deployments admitted
    ``hold_bursts`` bursts ago complete and free their workforce; the
    deferred queue is retried after every completion wave, with
    retry-admitted deployments joining the youngest cohort so they too
    complete ``hold_bursts`` bursts later.  After the last burst the
    remaining cohorts are flushed oldest-first, retrying after each wave
    so late capacity still serves the queue.

    Returns ``(decisions, retried)``: every decision in production order
    (burst answers interleaved with retry answers, so
    ``len(decisions) == len(requests) + retried``) and the number of
    retry decisions among them.

    ``schedule`` overrides the constant ``burst_size`` with explicit
    per-burst sizes (the declarative
    :meth:`~repro.workloads.spec.ArrivalSpec.schedule` contract: flash
    crowds, diurnal load curves); it must cover every request.
    """
    if burst_size < 1:
        raise ValueError("burst_size must be >= 1")
    if hold_bursts < 1:
        raise ValueError("hold_bursts must be >= 1")
    if schedule is None:
        bounds = list(range(0, len(requests), burst_size)) + [len(requests)]
    else:
        bounds = [0]
        for size in schedule:
            if size < 1:
                raise ValueError("schedule entries must be >= 1")
            bounds.append(min(bounds[-1] + size, len(requests)))
            if bounds[-1] == len(requests):
                break
        if bounds[-1] < len(requests):
            raise ValueError(
                f"schedule covers {bounds[-1]} arrivals but "
                f"{len(requests)} were provided"
            )
    decisions: list[StreamDecision] = []
    retried = 0

    def admitted_ids(batch):
        return [
            d.request.request_id
            for d in batch
            if d.status is StreamStatus.ADMITTED
        ]

    def complete_cohort(cohort):
        for request_id in cohort:
            session.complete(request_id)
        retries = session.retry_deferred()
        decisions.extend(retries)
        return retries

    cohorts: "deque[list[str]]" = deque()
    for start, stop in zip(bounds, bounds[1:]):
        batch = session.submit_many(list(requests[start:stop]))
        decisions.extend(batch)
        cohorts.append(admitted_ids(batch))
        if len(cohorts) > hold_bursts:
            retries = complete_cohort(cohorts.popleft())
            retried += len(retries)
            cohorts[-1].extend(admitted_ids(retries))
    while cohorts:
        retries = complete_cohort(cohorts.popleft())
        retried += len(retries)
        if retries and cohorts:
            cohorts[-1].extend(admitted_ids(retries))
        elif retries:
            cohorts.append(admitted_ids(retries))
    return decisions, retried
