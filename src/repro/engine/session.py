"""Engine sessions: the streaming ledger behind one seam (§7 extension).

An :class:`EngineSession` is the online counterpart of
:meth:`RecommendationEngine.resolve`: requests arrive one at a time, a
workforce ledger tracks remaining availability, admitted requests hold a
reservation until completed or revoked, and requests that do not fit are
answered with ADPaR alternatives produced by the owning engine's
configured solver backend (``solver=``/``solver_options=`` on the
engine), so a session opened on an ``onedim`` or ``adpar-weighted``
engine answers with that backend.  Decisions are identical to the legacy
``StreamingAggregator`` (differential-tested); on top of it the session
remembers DEFERRED requests and can retry them once capacity frees —
previously every caller re-implemented that loop.

One-shot batches go through :meth:`resolve_batch`, so a session is the
single API surface for both batch and streaming traffic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.aggregator import AggregatorReport
from repro.core.request import DeploymentRequest
from repro.core.streaming import StreamDecision, StreamStatus
from repro.exceptions import InfeasibleRequestError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.engine.engine import RecommendationEngine

_EPS = 1e-9


class EngineSession:
    """Online admission with a workforce ledger, revocation, and retry."""

    def __init__(self, engine: "RecommendationEngine"):
        self.engine = engine
        self.availability = engine.availability
        self._computer = engine.computer
        self._reserved: "dict[str, StreamDecision]" = {}
        self._deferred: "dict[str, DeploymentRequest]" = {}
        self._used = 0.0
        self.admitted_count = 0
        self.revoked_count = 0
        self.completed_count = 0

    # ----------------------------------------------------------------- state
    @property
    def remaining(self) -> float:
        """Workforce still unreserved."""
        return max(self.availability - self._used, 0.0)

    @property
    def active(self) -> "dict[str, StreamDecision]":
        """Currently admitted (not yet completed/revoked) requests."""
        return dict(self._reserved)

    @property
    def deferred(self) -> "list[DeploymentRequest]":
        """Requests answered DEFERRED, in arrival order, awaiting retry."""
        return list(self._deferred.values())

    def utilization(self) -> float:
        """Reserved fraction of the availability budget."""
        if self.availability == 0:
            return 0.0
        return self._used / self.availability

    # ---------------------------------------------------------------- submit
    def submit(self, request: DeploymentRequest) -> StreamDecision:
        """Process one arriving request against the current ledger."""
        if request.request_id in self._reserved:
            raise ValueError(f"request {request.request_id!r} is already active")
        decision = self._decide(request)
        if decision.status is StreamStatus.DEFERRED:
            # Assignment (not setdefault): a resubmission with revised
            # params must replace the stale entry; re-assigning an existing
            # key keeps its place in the arrival order.
            self._deferred[request.request_id] = request
        else:
            self._deferred.pop(request.request_id, None)
        return decision

    def _decide(self, request: DeploymentRequest) -> StreamDecision:
        need = self._computer.aggregate(request)
        if not need.feasible:
            return self._answer_infeasible(request)
        if need.requirement <= self.remaining + _EPS:
            decision = StreamDecision(
                request=request,
                status=StreamStatus.ADMITTED,
                strategy_names=tuple(
                    self.engine.ensemble.names[i] for i in need.strategy_indices
                ),
                workforce_reserved=need.requirement,
            )
            self._reserved[request.request_id] = decision
            self._used += need.requirement
            self.admitted_count += 1
            return decision
        if need.requirement <= self.availability + _EPS:
            # Would fit an empty platform: defer rather than mutate params.
            return StreamDecision(request=request, status=StreamStatus.DEFERRED)
        return self._answer_infeasible(request)

    def _answer_infeasible(self, request: DeploymentRequest) -> StreamDecision:
        try:
            alternative = self.engine.recommend_alternative(request)
        except InfeasibleRequestError:
            return StreamDecision(request=request, status=StreamStatus.INFEASIBLE)
        return StreamDecision(
            request=request,
            status=StreamStatus.ALTERNATIVE,
            strategy_names=alternative.strategy_names,
            alternative=alternative,
        )

    # ------------------------------------------------------------ lifecycle
    def revoke(self, request_id: str) -> float:
        """Cancel an admitted request; returns the workforce released."""
        decision = self._release(request_id)
        self.revoked_count += 1
        return decision.workforce_reserved

    def complete(self, request_id: str) -> float:
        """Mark an admitted request finished; its workforce is released."""
        decision = self._release(request_id)
        self.completed_count += 1
        return decision.workforce_reserved

    def _release(self, request_id: str) -> StreamDecision:
        try:
            decision = self._reserved.pop(request_id)
        except KeyError:
            raise KeyError(f"no active reservation for {request_id!r}") from None
        self._used = max(self._used - decision.workforce_reserved, 0.0)
        return decision

    # ----------------------------------------------------------------- retry
    def retry_deferred(self) -> list[StreamDecision]:
        """Resubmit deferred requests (arrival order) against freed capacity.

        Requests that still do not fit stay deferred; admitted (or
        alternatively answered) ones leave the queue.  Returns the fresh
        decision per retried request.
        """
        decisions: list[StreamDecision] = []
        for request in list(self._deferred.values()):
            del self._deferred[request.request_id]
            decisions.append(self.submit(request))
        return decisions

    # ----------------------------------------------------------------- batch
    def resolve_batch(self, requests: "list[DeploymentRequest]") -> AggregatorReport:
        """One-shot batch resolution through the owning engine.

        Batch planning works from the full availability budget (the
        legacy Aggregator contract); it does not debit this session's
        streaming ledger.
        """
        return self.engine.resolve(requests)
