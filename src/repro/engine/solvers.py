"""Pluggable ADPaR solver backends for the recommendation engine.

A *solver* answers the other half of the engine's job — given a request
the planner could not satisfy, which alternative parameters ``d'`` to
recommend (§4) — behind a single protocol: ``solve(request, k) ->
ADPaRResult`` plus a batch form ``solve_batch(requests)``.  The registry
maps stable backend names to factories so callers (the engine, the CLI's
``--solver`` flag, the fig17/fig18 runners) can swap solvers without
rewiring, exactly parallel to :class:`~repro.engine.registry.PlannerRegistry`:

========================  ====================================================
``adpar-exact``           Vectorized exact sweep (Theorem 4), pinned
                          bitwise-identical to :class:`ADPaRExact` — the
                          default.
``adpar-weighted``        Exact under a monotone penalty: ``norm`` ∈
                          {l1, l2, linf} and per-dimension ``weights``.
``onedim``                Baseline2 — one-parameter-at-a-time refinement
                          (Mishra et al.; §5.2.1).
``rtree``                 Baseline3 — R-tree MBB scan (§5.2.1).
``bruteforce``            ADPaRB — exhaustive k-subset enumeration
                          (exact, exponential).
========================  ====================================================

All five share the context's :class:`~repro.core.relaxation.RelaxationSpace`,
so one engine comparing several backends over the same ensemble builds
the unified smaller-is-better geometry once.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from dataclasses import replace as _dataclass_replace
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.baselines.adpar_bruteforce import adpar_brute_force
from repro.baselines.adpar_onedim import OneDimBaseline
from repro.baselines.adpar_rtree import RTreeBaseline
from repro.core.adpar import ADPaRResult, finalize_result, unpack_request
from repro.core.adpar_variants import RelaxationPenalty, WeightedADPaR
from repro.core.params import TriParams
from repro.core.relaxation import RelaxationSpace
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.exceptions import InfeasibleRequestError, UnknownSolverError
from repro.geometry.sweepline import block_frontier

_EPS = 1e-12

#: One request as the solver protocol accepts it.
SolverRequest = "DeploymentRequest | TriParams"


@dataclass(frozen=True)
class SolverContext:
    """Everything a solver backend needs to instantiate itself."""

    ensemble: StrategyEnsemble
    availability: float
    space: "RelaxationSpace | None" = None

    def with_space(self) -> "SolverContext":
        """This context with a :class:`RelaxationSpace` guaranteed."""
        if self.space is not None:
            return self
        return _dataclass_replace(
            self, space=RelaxationSpace(self.ensemble, self.availability)
        )


class AdparSolver(Protocol):
    """The one seam every alternative-parameter solver sits behind."""

    name: str
    space: RelaxationSpace

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        """Alternative parameters admitting ``k`` strategies."""
        ...

    def solve_batch(
        self, requests: Sequence[SolverRequest], k: "int | None" = None
    ) -> list[ADPaRResult]:
        """Solve many requests over the shared geometry in one call."""
        ...


SolverFactory = Callable[[SolverContext, dict], "AdparSolver"]


def solver_options_key(options: "dict | None") -> tuple:
    """Canonical hashable form of backend options, for cache keys.

    Sorted by key; list/tuple values (e.g. ``weights``) become tuples so
    ``{"norm": "l1", "weights": [2, 1, 1]}`` keys identically however the
    caller spelled it.
    """

    def freeze(value):
        if isinstance(value, (list, tuple)):
            return tuple(freeze(v) for v in value)
        if isinstance(value, dict):
            return tuple(sorted((k, freeze(v)) for k, v in value.items()))
        return value

    return tuple(sorted((k, freeze(v)) for k, v in (options or {}).items()))


# --------------------------------------------------------------------- exact
def _vectorized_sweep(
    space: RelaxationSpace, relax: np.ndarray, origin_x: float, k: int
) -> tuple[float, float, float]:
    """The exact sweep of ``ADPaRExact._sweep``, result-identical but fast.

    The reference scan evaluates the full 2-D Pareto frontier at *every*
    candidate cost relaxation — ``O(|S|)`` work per candidate.  The
    returned optimum, however, is the lexicographic minimum of
    ``(X² + Y² + Z², X, Y)`` over all (candidate, frontier-point) pairs
    (the reference's strict-improvement scan order is exactly that tie
    break), which licenses two prunes that never change the winner:

    * **Frontier-change gating.**  If no strategy entering at candidate
      ``x`` pierces the current (quality, latency) staircase, the
      frontier at ``x`` equals the last evaluated one, so every pair at
      ``x`` is strictly dominated by the same ``(Y, Z)`` at the smaller,
      already-evaluated ``x`` — skip without recomputing.  Piercing is a
      binary search against the staircase corners per entering strategy.
    * **Global 2-D bound.**  ``G``, the unconstrained-cost optimum of
      ``Y² + Z²`` (one frontier pass over all strategies), lower-bounds
      every candidate's 2-D completion, so the scan can stop at
      ``X² + G ≥ best`` — strictly earlier than the reference's
      ``X² ≥ best`` Figure-8 bound.

    Candidate values come from the space's presorted cost column
    (:meth:`RelaxationSpace.sweep_values` matches ``np.unique`` value for
    value), rows are lexsorted by (quality, latency) once per request,
    and frontiers are enumerated by
    :func:`~repro.geometry.sweepline.block_frontier`, which yields
    exactly what the reference heap sweep yields.  Property tests pin the
    result bitwise-identical to ``ADPaRExact``.
    """
    _, xs = space.sweep_values(origin_x)
    yz_order = np.lexsort((relax[:, 2], relax[:, 1]))
    ys = relax[yz_order, 1]
    zs = relax[yz_order, 2]
    x_in_yz = relax[yz_order, 0]

    # Admission step per row: row joins S_j iff x_row <= xs[j] + eps,
    # i.e. at the first candidate whose threshold reaches its value.
    thresholds = xs + _EPS
    enter_at = np.searchsorted(thresholds, x_in_yz, side="left")
    enter_order = np.argsort(enter_at, kind="stable")
    enter_sorted = enter_at[enter_order]
    y_entering = ys[enter_order]
    z_entering = zs[enter_order]
    starts = np.searchsorted(enter_sorted, np.arange(xs.size + 1), side="left")

    # Unconstrained-cost lower bound on any candidate's 2-D completion.
    G = min((y * y + z * z for y, z in block_frontier(ys, zs, k)), default=math.inf)

    best_obj = math.inf
    best: "tuple[float, float, float] | None" = None
    corners_y: "np.ndarray | None" = None  # current staircase, y ascending
    corners_z: "np.ndarray | None" = None
    corners: list[tuple[float, float]] = []
    members = 0
    dirty = False
    for j in range(xs.size):
        x = float(xs[j])
        if x * x + G >= best_obj:
            break  # tighter than the Figure-8 bound; same winner
        lo, hi = int(starts[j]), int(starts[j + 1])
        if hi > lo:
            members += hi - lo
            if not dirty:
                if corners_y is None:
                    dirty = members >= k
                else:
                    pos = (
                        np.searchsorted(corners_y, y_entering[lo:hi], side="right")
                        - 1
                    )
                    pierced = (pos < 0) | (
                        z_entering[lo:hi] < corners_z[np.maximum(pos, 0)]
                    )
                    dirty = bool(pierced.any())
        if members < k or not dirty:
            continue
        mask = enter_at <= j
        corners = list(block_frontier(ys[mask], zs[mask], k))
        corners_y = np.array([c[0] for c in corners])
        corners_z = np.array([c[1] for c in corners])
        dirty = False
        for y, z in corners:
            obj = x * x + y * y + z * z
            if obj < best_obj:
                best_obj = obj
                best = (x, y, z)
    if best is None:
        raise InfeasibleRequestError("sweep found no covering relaxation")
    return best


class VectorizedExactSolver:
    """``adpar-exact``: the default backend, vectorized over blocks.

    Property tests pin both paths — :meth:`solve` and
    :meth:`solve_batch` — bitwise-identical (distance, alternative
    parameters, chosen strategy indices) to the reference
    :class:`~repro.core.adpar.ADPaRExact`.
    """

    name = "adpar-exact"

    #: Requests per relaxation-matrix block; bounds peak memory at
    #: ``_CHUNK × n × 3`` floats while keeping the broadcast win.
    _CHUNK = 128

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.ensemble = context.ensemble
        self.availability = context.availability
        self.space = context.space

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self.solve_batch([request], k)[0]

    def solve_batch(
        self, requests: Sequence[SolverRequest], k: "int | None" = None
    ) -> list[ADPaRResult]:
        space = self.space
        unpacked = [unpack_request(r, k, space.size) for r in requests]
        results: list[ADPaRResult] = []
        for start in range(0, len(unpacked), self._CHUNK):
            part = unpacked[start : start + self._CHUNK]
            origins = np.stack([space.origin_of(params) for params, _ in part])
            relax_block = space.relaxation_batch(origins)
            for (params, kk), origin, relax in zip(part, origins, relax_block):
                best = _vectorized_sweep(space, relax, float(origin[0]), kk)
                results.append(
                    finalize_result(self.ensemble, params, relax, best, kk)
                )
        return results


# ------------------------------------------------------------------ wrappers
class _ScalarLoopMixin:
    """Batch form for backends whose algorithm is inherently per-request."""

    def solve_batch(
        self, requests: Sequence[SolverRequest], k: "int | None" = None
    ) -> list[ADPaRResult]:
        return [self.solve(request, k) for request in requests]


class WeightedSolver(_ScalarLoopMixin):
    """``adpar-weighted``: exact under ``norm``/``weights`` options."""

    name = "adpar-weighted"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.space = context.space
        weights = options.get("weights", (1.0, 1.0, 1.0))
        penalty = RelaxationPenalty(
            weights=tuple(float(w) for w in weights),
            norm=str(options.get("norm", "l2")),
        )
        self.penalty = penalty
        self._solver = WeightedADPaR(
            context.ensemble,
            penalty,
            availability=context.availability,
            space=context.space,
        )

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self._solver.solve(request, k)


class OneDimSolver(_ScalarLoopMixin):
    """``onedim``: Baseline2, one-parameter-at-a-time refinement."""

    name = "onedim"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.space = context.space
        self._solver = OneDimBaseline(
            context.ensemble, context.availability, space=context.space
        )

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self._solver.solve(request, k)


class RTreeSolver(_ScalarLoopMixin):
    """``rtree``: Baseline3, R-tree MBB scan (bulk-loaded once)."""

    name = "rtree"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.space = context.space
        self._solver = RTreeBaseline(
            context.ensemble,
            context.availability,
            max_entries=int(options.get("max_entries", 8)),
            space=context.space,
        )

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self._solver.solve(request, k)


class BruteForceSolver(_ScalarLoopMixin):
    """``bruteforce``: ADPaRB subset enumeration (exact, exponential)."""

    name = "bruteforce"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.ensemble = context.ensemble
        self.availability = context.availability
        self.space = context.space

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return adpar_brute_force(
            self.ensemble,
            request,
            k,
            availability=self.availability,
            space=self.space,
        )


# ------------------------------------------------------------------ registry
class SolverRegistry:
    """Name → solver-factory mapping with typed error handling."""

    def __init__(self):
        self._factories: "dict[str, SolverFactory]" = {}
        self._descriptions: dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: SolverFactory,
        description: str = "",
        replace: bool = False,
    ) -> None:
        """Register a backend; re-registering a name requires ``replace``."""
        if not name:
            raise ValueError("solver name must be non-empty")
        if name in self._factories and not replace:
            raise ValueError(f"solver {name!r} is already registered")
        self._factories[name] = factory
        self._descriptions[name] = description

    def names(self) -> list[str]:
        """Registered backend names, sorted."""
        return sorted(self._factories)

    def describe(self, name: str) -> str:
        if name not in self._factories:
            raise UnknownSolverError(name)
        return self._descriptions.get(name, "")

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(
        self,
        name: str,
        context: SolverContext,
        options: "dict | None" = None,
    ) -> AdparSolver:
        """Instantiate a backend for one estimation context."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise UnknownSolverError(
                f"unknown solver backend {name!r}; registered: {known}"
            ) from None
        return factory(context.with_space(), dict(options or {}))


def _builtin_registry() -> SolverRegistry:
    registry = SolverRegistry()
    registry.register(
        "adpar-exact",
        VectorizedExactSolver,
        "vectorized exact sweep (Theorem 4); the default",
    )
    registry.register(
        "adpar-weighted",
        WeightedSolver,
        "exact under per-dimension weights and an l1/l2/linf norm",
    )
    registry.register(
        "onedim",
        OneDimSolver,
        "Baseline2: one-parameter-at-a-time refinement (§5.2.1)",
    )
    registry.register(
        "rtree",
        RTreeSolver,
        "Baseline3: R-tree MBB scan (§5.2.1)",
    )
    registry.register(
        "bruteforce",
        BruteForceSolver,
        "ADPaRB: exhaustive k-subset enumeration; exact, exponential",
    )
    return registry


_DEFAULT_REGISTRY = _builtin_registry()


def default_solver_registry() -> SolverRegistry:
    """The process-wide registry with the built-in backends."""
    return _DEFAULT_REGISTRY
