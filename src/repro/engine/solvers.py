"""Pluggable ADPaR solver backends for the recommendation engine.

A *solver* answers the other half of the engine's job — given a request
the planner could not satisfy, which alternative parameters ``d'`` to
recommend (§4) — behind a single protocol: ``solve(request, k) ->
ADPaRResult`` plus a batch form ``solve_batch(requests)``.  The registry
maps stable backend names to factories so callers (the engine, the CLI's
``--solver`` flag, the fig17/fig18 runners) can swap solvers without
rewiring, exactly parallel to :class:`~repro.engine.registry.PlannerRegistry`:

========================  ====================================================
``adpar-exact``           Vectorized exact sweep (Theorem 4), pinned
                          bitwise-identical to :class:`ADPaRExact` — the
                          default.
``adpar-incremental``     Index-pruned exact sweep over delta-maintained
                          spaces; bitwise-identical to ``adpar-exact``
                          but skips per-request sorts and prunes frontier
                          work through a block-summary index.
``adpar-weighted``        Exact under a monotone penalty: ``norm`` ∈
                          {l1, l2, linf} and per-dimension ``weights``.
``onedim``                Baseline2 — one-parameter-at-a-time refinement
                          (Mishra et al.; §5.2.1).
``rtree``                 Baseline3 — R-tree MBB scan (§5.2.1).
``bruteforce``            ADPaRB — exhaustive k-subset enumeration
                          (exact, exponential).
========================  ====================================================

All five share the context's :class:`~repro.core.relaxation.RelaxationSpace`,
so one engine comparing several backends over the same ensemble builds
the unified smaller-is-better geometry once.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass
from dataclasses import replace as _dataclass_replace
from typing import Callable, Protocol, Sequence

import numpy as np

from repro.baselines.adpar_bruteforce import adpar_brute_force
from repro.baselines.adpar_onedim import OneDimBaseline
from repro.baselines.adpar_rtree import RTreeBaseline
from repro.core.adpar import ADPaRResult, finalize_result, unpack_request
from repro.core.adpar_variants import RelaxationPenalty, WeightedADPaR
from repro.core.params import TriParams
from repro.core.relaxation import RelaxationSpace
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.exceptions import InfeasibleRequestError, UnknownSolverError
from repro.geometry.frontier_index import FrontierCursor
from repro.geometry.sweepline import block_frontier

_EPS = 1e-12

#: Four rounding steps (two adds per corner objective, one add and one
#: minimum materialization in the admitted-norm floor) separate the
#: skip bound from the objectives it underestimates, so shrinking it by
#: four ulps makes "floor can't beat best" safe in float: a candidate is
#: only skipped when *no* corner objective can strictly improve.
_SKIP_MARGIN = 1.0 - 4.5e-16

#: One request as the solver protocol accepts it.
SolverRequest = "DeploymentRequest | TriParams"


@dataclass(frozen=True)
class SolverContext:
    """Everything a solver backend needs to instantiate itself."""

    ensemble: StrategyEnsemble
    availability: float
    space: "RelaxationSpace | None" = None

    def with_space(self) -> "SolverContext":
        """This context with a :class:`RelaxationSpace` guaranteed."""
        if self.space is not None:
            return self
        return _dataclass_replace(
            self, space=RelaxationSpace(self.ensemble, self.availability)
        )


class AdparSolver(Protocol):
    """The one seam every alternative-parameter solver sits behind."""

    name: str
    space: RelaxationSpace

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        """Alternative parameters admitting ``k`` strategies."""
        ...

    def solve_batch(
        self, requests: Sequence[SolverRequest], k: "int | None" = None
    ) -> list[ADPaRResult]:
        """Solve many requests over the shared geometry in one call."""
        ...


SolverFactory = Callable[[SolverContext, dict], "AdparSolver"]


def solver_options_key(options: "dict | None") -> tuple:
    """Canonical hashable form of backend options, for cache keys.

    Sorted by key; list/tuple values (e.g. ``weights``) become tuples so
    ``{"norm": "l1", "weights": [2, 1, 1]}`` keys identically however the
    caller spelled it.
    """

    def freeze(value):
        if isinstance(value, (list, tuple)):
            return tuple(freeze(v) for v in value)
        if isinstance(value, dict):
            return tuple(sorted((k, freeze(v)) for k, v in value.items()))
        return value

    return tuple(sorted((k, freeze(v)) for k, v in (options or {}).items()))


# --------------------------------------------------------------------- exact
def _vectorized_sweep(
    space: RelaxationSpace, relax: np.ndarray, origin_x: float, k: int
) -> tuple[float, float, float]:
    """The exact sweep of ``ADPaRExact._sweep``, result-identical but fast.

    The reference scan evaluates the full 2-D Pareto frontier at *every*
    candidate cost relaxation — ``O(|S|)`` work per candidate.  The
    returned optimum, however, is the lexicographic minimum of
    ``(X² + Y² + Z², X, Y)`` over all (candidate, frontier-point) pairs
    (the reference's strict-improvement scan order is exactly that tie
    break), which licenses two prunes that never change the winner:

    * **Frontier-change gating.**  If no strategy entering at candidate
      ``x`` pierces the current (quality, latency) staircase, the
      frontier at ``x`` equals the last evaluated one, so every pair at
      ``x`` is strictly dominated by the same ``(Y, Z)`` at the smaller,
      already-evaluated ``x`` — skip without recomputing.  Piercing is a
      binary search against the staircase corners per entering strategy.
    * **Global 2-D bound.**  ``G``, the unconstrained-cost optimum of
      ``Y² + Z²`` (one frontier pass over all strategies), lower-bounds
      every candidate's 2-D completion, so the scan can stop at
      ``X² + G ≥ best`` — strictly earlier than the reference's
      ``X² ≥ best`` Figure-8 bound.

    Candidate values come from the space's presorted cost column
    (:meth:`RelaxationSpace.sweep_values` matches ``np.unique`` value for
    value), rows are lexsorted by (quality, latency) once per request,
    and frontiers are enumerated by
    :func:`~repro.geometry.sweepline.block_frontier`, which yields
    exactly what the reference heap sweep yields.  Property tests pin the
    result bitwise-identical to ``ADPaRExact``.
    """
    _, xs = space.sweep_values(origin_x)
    yz_order = np.lexsort((relax[:, 2], relax[:, 1]))
    ys = relax[yz_order, 1]
    zs = relax[yz_order, 2]
    x_in_yz = relax[yz_order, 0]

    # Admission step per row: row joins S_j iff x_row <= xs[j] + eps,
    # i.e. at the first candidate whose threshold reaches its value.
    thresholds = xs + _EPS
    enter_at = np.searchsorted(thresholds, x_in_yz, side="left")
    enter_order = np.argsort(enter_at, kind="stable")
    enter_sorted = enter_at[enter_order]
    y_entering = ys[enter_order]
    z_entering = zs[enter_order]
    starts = np.searchsorted(enter_sorted, np.arange(xs.size + 1), side="left")

    # Unconstrained-cost lower bound on any candidate's 2-D completion.
    G = min((y * y + z * z for y, z in block_frontier(ys, zs, k)), default=math.inf)

    best_obj = math.inf
    best: "tuple[float, float, float] | None" = None
    corners_y: "np.ndarray | None" = None  # current staircase, y ascending
    corners_z: "np.ndarray | None" = None
    corners: list[tuple[float, float]] = []
    members = 0
    dirty = False
    for j in range(xs.size):
        x = float(xs[j])
        if x * x + G >= best_obj:
            break  # tighter than the Figure-8 bound; same winner
        lo, hi = int(starts[j]), int(starts[j + 1])
        if hi > lo:
            members += hi - lo
            if not dirty:
                if corners_y is None:
                    dirty = members >= k
                else:
                    pos = (
                        np.searchsorted(corners_y, y_entering[lo:hi], side="right")
                        - 1
                    )
                    pierced = (pos < 0) | (
                        z_entering[lo:hi] < corners_z[np.maximum(pos, 0)]
                    )
                    dirty = bool(pierced.any())
        if members < k or not dirty:
            continue
        mask = enter_at <= j
        corners = list(block_frontier(ys[mask], zs[mask], k))
        corners_y = np.array([c[0] for c in corners])
        corners_z = np.array([c[1] for c in corners])
        dirty = False
        for y, z in corners:
            obj = x * x + y * y + z * z
            if obj < best_obj:
                best_obj = obj
                best = (x, y, z)
    if best is None:
        raise InfeasibleRequestError("sweep found no covering relaxation")
    return best


class VectorizedExactSolver:
    """``adpar-exact``: the default backend, vectorized over blocks.

    Property tests pin both paths — :meth:`solve` and
    :meth:`solve_batch` — bitwise-identical (distance, alternative
    parameters, chosen strategy indices) to the reference
    :class:`~repro.core.adpar.ADPaRExact`.
    """

    name = "adpar-exact"

    #: Requests per relaxation-matrix block; bounds peak memory at
    #: ``_CHUNK × n × 3`` floats while keeping the broadcast win.
    _CHUNK = 128

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.ensemble = context.ensemble
        self.availability = context.availability
        self.space = context.space

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self.solve_batch([request], k)[0]

    def solve_batch(
        self, requests: Sequence[SolverRequest], k: "int | None" = None
    ) -> list[ADPaRResult]:
        space = self.space
        unpacked = [unpack_request(r, k, space.size) for r in requests]
        results: list[ADPaRResult] = []
        for start in range(0, len(unpacked), self._CHUNK):
            part = unpacked[start : start + self._CHUNK]
            origins = np.stack([space.origin_of(params) for params, _ in part])
            relax_block = space.relaxation_batch(origins)
            for (params, kk), origin, relax in zip(part, origins, relax_block):
                best = _vectorized_sweep(space, relax, float(origin[0]), kk)
                results.append(
                    finalize_result(self.ensemble, params, relax, best, kk)
                )
        return results


# ------------------------------------------------------------- incremental
def _relax_frontier_order(
    space: RelaxationSpace,
    relax: np.ndarray,
    scratch: "_SweepScratch | None" = None,
) -> np.ndarray:
    """Row order sorting ``relax`` by ``(relax_y, relax_z)`` — no lexsort.

    The per-dimension relaxations are monotone nondecreasing images of
    the point coordinates (``max(p − o, 0)``), so the space's precomputed
    point orders already almost sort them:

    * rows whose ``relax_y`` clipped to zero, ordered by the global
      z-dimension order (``relax_z`` is monotone in ``point_z``), come
      first;
    * rows with positive ``relax_y`` follow in the global y-dimension
      order.

    The only disagreement with a true lexsort is inside groups of
    *distinct* point values that subtraction collapsed onto one
    ``relax_y`` — detected by one neighbour comparison and re-ordered by
    ``relax_z`` per (rare, tiny) group.  Ties in ``(relax_y, relax_z)``
    are value-identical rows, so their internal order cannot change any
    frontier yield.

    With ``scratch`` (whose ``col_y``/``col_z`` the caller must already
    hold staged copies of ``relax``'s y/z columns), every ``O(n)``
    temporary lands in a warm buffer and the two halves compress
    straight into adjacent slices of ``scratch.order_out`` — the
    returned order is then a view into the scratch.  Same comparisons,
    same order, either way.
    """
    orders = space.dimension_orders
    y_order = orders[1]
    z_order = orders[2]
    if scratch is None:
        relax_y = relax[:, 1]
        relax_z = relax[:, 2]
        relax_y_sorted = relax_y[y_order]
        positive = relax_y_sorted > 0.0
        zero_part = z_order[relax_y[z_order] == 0.0]
        positive_part = y_order[positive]
    else:
        relax_z = scratch.col_z
        relax_y_sorted = np.take(scratch.col_y, y_order, out=scratch.cursor_y)
        positive = np.greater(relax_y_sorted, 0.0, out=scratch.mask)
        zero_by_z = np.take(scratch.col_y, z_order, out=scratch.cursor_z)
        zero_mask = np.equal(zero_by_z, 0.0, out=scratch.mask2)
        # relax_y = max(p − o, 0) >= 0, so the two halves partition the
        # rows and fill order_out exactly.
        n_zero = int(np.count_nonzero(zero_mask))
        zero_part = scratch.order_out[:n_zero]
        np.compress(zero_mask, z_order, out=zero_part)
        positive_part = scratch.order_out[n_zero:]
        np.compress(positive, y_order, out=positive_part)
    if positive_part.size > 1:
        if scratch is None:
            relax_y_positive = relax_y_sorted[positive]
        else:
            relax_y_positive = scratch.tmp[: positive_part.size]
            np.compress(positive, relax_y_sorted, out=relax_y_positive)
        collapsed = np.flatnonzero(relax_y_positive[1:] == relax_y_positive[:-1])
        if collapsed.size:
            cursor = 0
            while cursor < collapsed.size:
                start = int(collapsed[cursor])
                end = start + 1
                cursor += 1
                while cursor < collapsed.size and int(collapsed[cursor]) == end:
                    end += 1
                    cursor += 1
                group = positive_part[start : end + 1]
                positive_part[start : end + 1] = group[
                    np.argsort(relax_z[group], kind="stable")
                ]
    if scratch is None:
        return np.concatenate([zero_part, positive_part])
    return scratch.order_out


class _SweepScratch:
    """Warm per-solver buffers for the indexed sweep's ``O(n)`` setup.

    Every request rebuilds the same ten ``n``-sized temporaries; at
    fig18 scale each is large enough that a fresh allocation is served
    by freshly mapped pages, and faulting those in costs more than the
    gathers that fill them.  One scratch per solver keeps the pages warm
    across a batch.  The values written are produced by the same float
    operations as the allocating forms, so results are unchanged.
    """

    __slots__ = (
        "n",
        "col_y",
        "col_z",
        "cursor_y",
        "cursor_z",
        "entering_y",
        "entering_z",
        "position_of",
        "position_by_rank",
        "norm",
        "bound",
        "arange",
        "mask",
        "mask2",
        "tmp",
        "order_out",
        "table_sorted",
        "table_xs",
        "table_starts",
        "table_prefix",
    )

    def __init__(self, n: int):
        self.n = n
        self.col_y = np.empty(n)
        self.col_z = np.empty(n)
        self.cursor_y = np.empty(n)
        self.cursor_z = np.empty(n)
        self.entering_y = np.empty(n)
        self.entering_z = np.empty(n)
        self.position_of = np.empty(n, dtype=np.intp)
        self.position_by_rank = np.empty(n, dtype=np.intp)
        self.norm = np.empty(n)
        self.bound = np.empty(n)
        self.arange = np.arange(n, dtype=np.intp)
        self.mask = np.empty(n, dtype=bool)
        self.mask2 = np.empty(n, dtype=bool)
        self.tmp = np.empty(n)
        self.order_out = np.empty(n, dtype=np.intp)
        self.table_sorted = np.empty(n)
        self.table_xs = np.empty(n)
        self.table_starts = np.empty(n, dtype=np.intp)
        self.table_prefix = np.empty(n, dtype=np.intp)


def _indexed_sweep(
    space: RelaxationSpace,
    relax: np.ndarray,
    origin: np.ndarray,
    k: int,
    block: int = 2048,
    scratch: "_SweepScratch | None" = None,
) -> tuple[float, float, float]:
    """:func:`_vectorized_sweep`, re-derived over index structures.

    Result-identical — float for float — to the reference sweep, but
    every per-request ``O(n log n)`` ingredient is replaced by an
    ``O(n)`` (or cached) one:

    * the (y, z) enumeration order comes from the space's precomputed
      dimension orders (:func:`_relax_frontier_order`), not a lexsort;
    * strategies enter by x-rank prefix (``searchsorted`` against the
      presorted cost column), not an argsort over entry candidates;
    * the global 2-D bound ``G`` maps the space's cached per-``k``
      frontier (:meth:`RelaxationSpace.frontier_index`) through the
      request origin — the mapped minimum is float-equal to the
      reference's full-set frontier pass;
    * per-candidate frontiers come from a
      :class:`~repro.geometry.frontier_index.FrontierCursor`, which
      repairs the previous frontier with the newly admitted rows
      instead of rescanning every admitted row — ``O(n)`` total across
      all of a request's evaluations instead of per evaluation;
    * candidates whose admitted-norm floor provably cannot beat the
      running best skip their evaluation outright
      (:data:`_SKIP_MARGIN`);
    * the candidate loop itself advances by jump: one vectorized
      galloping scan over the entering points finds the next candidate
      whose arrivals pierce the current staircase, so Python touches one
      iteration per *frontier change* instead of per candidate.

    The staircase-gating and bound-break comparisons are the same float
    expressions as the reference's, evaluated against the same corner
    values, so the evaluated candidate set — and therefore the winner
    under the reference's strict-improvement tie-break — is identical.
    """
    origin_x = float(origin[0])
    origin_y = float(origin[1])
    origin_z = float(origin[2])
    if scratch is None or scratch.n != relax.shape[0]:
        scratch = _SweepScratch(relax.shape[0])
    # Stage the strided (y, z) columns contiguous once; every gather
    # below — and the order derivation — then runs through
    # ``np.take``/``np.compress`` with ``out=`` on warm buffers.
    np.copyto(scratch.col_y, relax[:, 1])
    np.copyto(scratch.col_z, relax[:, 2])
    # Prefix length per candidate: row i is covered at candidate j iff
    # its cost relaxation is within xs[j] + eps — identical admission
    # rule (and float comparisons) to the reference's enter_at.
    _, xs, prefix = space.sweep_table(origin_x, _EPS, scratch)
    order = _relax_frontier_order(space, relax, scratch)
    np.take(scratch.col_y, order, out=scratch.cursor_y)
    np.take(scratch.col_z, order, out=scratch.cursor_z)
    cursor = FrontierCursor(scratch.cursor_y, scratch.cursor_z, k, chunk=block)
    # Position (in the cursor's enumeration order) of the row holding
    # each admission rank, so newly admitted rank ranges turn into
    # cursor positions with one gather.
    position_of = scratch.position_of
    position_of[order] = scratch.arange
    x_order = space.dimension_orders[0]
    position_by_rank = scratch.position_by_rank
    np.take(position_of, x_order, out=position_by_rank)
    entering_y = scratch.entering_y
    entering_z = scratch.entering_z
    np.take(scratch.col_y, x_order, out=entering_y)
    np.take(scratch.col_z, x_order, out=entering_z)
    # Running minimum of the admitted points' (y² + z²) norms, by entry
    # order.  Every staircase corner pairs a pushed point's y with a
    # k-th-smallest z that is >= that point's own z, so a corner's norm
    # is >= its point's norm >= this prefix minimum — which makes
    # ``x² + prefix_min`` a lower bound on everything a frontier
    # evaluation at that prefix could produce.  Candidates whose bound
    # (shrunk by :data:`_SKIP_MARGIN` to absorb rounding) cannot beat
    # the running best skip the evaluation outright.
    prefix_min_norm = scratch.norm
    np.multiply(entering_y, entering_y, out=prefix_min_norm)
    np.multiply(entering_z, entering_z, out=scratch.bound)
    np.add(prefix_min_norm, scratch.bound, out=prefix_min_norm)
    np.minimum.accumulate(prefix_min_norm, out=prefix_min_norm)
    global_y, global_z = space.frontier_index.global_pairs(k)
    mapped_y = np.maximum(global_y - origin_y, 0.0)
    mapped_z = np.maximum(global_z - origin_z, 0.0)
    G = float(np.min(mapped_y * mapped_y + mapped_z * mapped_z))
    # x² + G is nondecreasing (float add is monotone), so the scan's
    # stop point under the current best is one exact binary search.
    bound_curve = scratch.bound[: xs.size]
    np.multiply(xs, xs, out=bound_curve)
    np.add(bound_curve, G, out=bound_curve)

    best_obj = math.inf
    best: "tuple[float, float, float] | None" = None
    corners_y: "np.ndarray | None" = None
    corners_z: "np.ndarray | None" = None
    candidates = xs.size
    j = int(np.searchsorted(prefix, k, side="left"))  # first covering >= k
    row = -1  # next entering row the pierce scan has not cleared yet
    admitted = 0  # ranks already handed to the cursor
    while j < candidates:
        x = float(xs[j])
        if x * x + G >= best_obj:
            break
        p = int(prefix[j])
        if (
            corners_y is None
            or (x * x + float(prefix_min_norm[p - 1])) * _SKIP_MARGIN
            < best_obj
        ):
            new_positions = np.sort(position_by_rank[admitted:p])
            admitted = p
            corner_list_y, corner_list_z = cursor.frontier(new_positions)
            for y, z in zip(corner_list_y, corner_list_z):
                obj = x * x + y * y + z * z
                if obj < best_obj:
                    best_obj = obj
                    best = (x, y, z)
            corners_y = np.asarray(corner_list_y)
            corners_z = np.asarray(corner_list_z)
            row = p
        # else: skipped — the stale staircase (a pointwise upper envelope
        # of the true one) keeps the gating conservative, and the scan
        # resumes past the row that triggered this visit.
        stop = int(np.searchsorted(bound_curve, best_obj, side="left"))
        if stop <= j + 1:
            break
        row_stop = int(prefix[stop - 1])
        pierced_at = -1
        chunk = 64
        while row < row_stop:
            upto = min(row + chunk, row_stop)
            slot = (
                np.searchsorted(corners_y, entering_y[row:upto], side="right") - 1
            )
            # take(mode="clip") maps slot -1 onto corner 0; the slot < 0
            # disjunct keeps those rows counted as piercing regardless.
            pierced = (slot < 0) | (
                entering_z[row:upto] < corners_z.take(slot, mode="clip")
            )
            hits = np.flatnonzero(pierced)
            if hits.size:
                pierced_at = row + int(hits[0])
                break
            row = upto
            chunk = min(chunk * 2, 4096)
        if pierced_at < 0:
            break
        row = pierced_at + 1
        j = int(np.searchsorted(prefix, pierced_at, side="right"))
    if best is None:
        raise InfeasibleRequestError("sweep found no covering relaxation")
    return best


class IncrementalExactSolver:
    """``adpar-incremental``: the index-pruned sweep over shared geometry.

    Bitwise-identical outputs to :class:`VectorizedExactSolver` (and
    therefore to the reference :class:`~repro.core.adpar.ADPaRExact`) —
    property-pinned for scalar, batch, and availability-tick traffic —
    while reusing the space's cached frontier index and presorted
    structures, which the delta chain
    (:meth:`~repro.core.relaxation.RelaxationSpace.shifted`) maintains
    across availability ticks instead of rebuilding.
    """

    name = "adpar-incremental"

    _CHUNK = 128

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.ensemble = context.ensemble
        self.availability = context.availability
        self.space = context.space
        self._block = int(options.get("block", 2048))
        if self._block < 1:
            raise ValueError(f"block must be >= 1, got {self._block}")
        # Warm scratch, per thread: solver instances are cached in the
        # EngineCache and shared across the serve path's worker threads,
        # so each thread gets its own buffers.  Refaulting ~10MB of
        # freshly mapped pages per block costs more than the relaxation
        # arithmetic itself — warm pages are the point.
        self._local = threading.local()

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self.solve_batch([request], k)[0]

    def _sweep_scratch_for(self, n: int) -> _SweepScratch:
        scratch: "_SweepScratch | None" = getattr(self._local, "sweep", None)
        if scratch is None or scratch.n != n:
            scratch = _SweepScratch(n)
            self._local.sweep = scratch
        return scratch

    def _relax_scratch_for(self, rows: int, n: int) -> np.ndarray:
        scratch: "np.ndarray | None" = getattr(self._local, "relax", None)
        if scratch is None or scratch.shape[0] < rows or scratch.shape[1] != n:
            scratch = np.empty((rows, n, 3), dtype=float)
            self._local.relax = scratch
        return scratch[:rows]

    def solve_batch(
        self, requests: Sequence[SolverRequest], k: "int | None" = None
    ) -> list[ADPaRResult]:
        space = self.space
        unpacked = [unpack_request(r, k, space.size) for r in requests]
        sweep_scratch = self._sweep_scratch_for(space.size)
        results: list[ADPaRResult] = []
        for start in range(0, len(unpacked), self._CHUNK):
            part = unpacked[start : start + self._CHUNK]
            origins = np.stack([space.origin_of(params) for params, _ in part])
            relax_block = space.relaxation_batch(
                origins, out=self._relax_scratch_for(len(part), space.size)
            )
            for (params, kk), origin, relax in zip(part, origins, relax_block):
                best = _indexed_sweep(
                    space,
                    relax,
                    origin,
                    kk,
                    block=self._block,
                    scratch=sweep_scratch,
                )
                results.append(
                    finalize_result(self.ensemble, params, relax, best, kk)
                )
        return results


# ------------------------------------------------------------------ wrappers
class _ScalarLoopMixin:
    """Batch form for backends whose algorithm is inherently per-request."""

    def solve_batch(
        self, requests: Sequence[SolverRequest], k: "int | None" = None
    ) -> list[ADPaRResult]:
        return [self.solve(request, k) for request in requests]


class WeightedSolver(_ScalarLoopMixin):
    """``adpar-weighted``: exact under ``norm``/``weights`` options."""

    name = "adpar-weighted"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.space = context.space
        weights = options.get("weights", (1.0, 1.0, 1.0))
        penalty = RelaxationPenalty(
            weights=tuple(float(w) for w in weights),
            norm=str(options.get("norm", "l2")),
        )
        self.penalty = penalty
        self._solver = WeightedADPaR(
            context.ensemble,
            penalty,
            availability=context.availability,
            space=context.space,
        )

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self._solver.solve(request, k)


class OneDimSolver(_ScalarLoopMixin):
    """``onedim``: Baseline2, one-parameter-at-a-time refinement."""

    name = "onedim"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.space = context.space
        self._solver = OneDimBaseline(
            context.ensemble, context.availability, space=context.space
        )

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self._solver.solve(request, k)


class RTreeSolver(_ScalarLoopMixin):
    """``rtree``: Baseline3, R-tree MBB scan (bulk-loaded once)."""

    name = "rtree"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.space = context.space
        self._solver = RTreeBaseline(
            context.ensemble,
            context.availability,
            max_entries=int(options.get("max_entries", 8)),
            space=context.space,
        )

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return self._solver.solve(request, k)


class BruteForceSolver(_ScalarLoopMixin):
    """``bruteforce``: ADPaRB subset enumeration (exact, exponential)."""

    name = "bruteforce"

    def __init__(self, context: SolverContext, options: dict):
        context = context.with_space()
        self.ensemble = context.ensemble
        self.availability = context.availability
        self.space = context.space

    def solve(
        self, request: SolverRequest, k: "int | None" = None
    ) -> ADPaRResult:
        return adpar_brute_force(
            self.ensemble,
            request,
            k,
            availability=self.availability,
            space=self.space,
        )


# ------------------------------------------------------------------ registry
class SolverRegistry:
    """Name → solver-factory mapping with typed error handling."""

    def __init__(self):
        self._factories: "dict[str, SolverFactory]" = {}
        self._descriptions: dict[str, str] = {}

    def register(
        self,
        name: str,
        factory: SolverFactory,
        description: str = "",
        replace: bool = False,
    ) -> None:
        """Register a backend; re-registering a name requires ``replace``."""
        if not name:
            raise ValueError("solver name must be non-empty")
        if name in self._factories and not replace:
            raise ValueError(f"solver {name!r} is already registered")
        self._factories[name] = factory
        self._descriptions[name] = description

    def names(self) -> list[str]:
        """Registered backend names, sorted."""
        return sorted(self._factories)

    def describe(self, name: str) -> str:
        if name not in self._factories:
            raise UnknownSolverError(name)
        return self._descriptions.get(name, "")

    def __contains__(self, name: str) -> bool:
        return name in self._factories

    def create(
        self,
        name: str,
        context: SolverContext,
        options: "dict | None" = None,
    ) -> AdparSolver:
        """Instantiate a backend for one estimation context."""
        try:
            factory = self._factories[name]
        except KeyError:
            known = ", ".join(self.names()) or "<none>"
            raise UnknownSolverError(
                f"unknown solver backend {name!r}; registered: {known}"
            ) from None
        return factory(context.with_space(), dict(options or {}))


def _builtin_registry() -> SolverRegistry:
    registry = SolverRegistry()
    registry.register(
        "adpar-exact",
        VectorizedExactSolver,
        "vectorized exact sweep (Theorem 4); the default",
    )
    registry.register(
        "adpar-incremental",
        IncrementalExactSolver,
        "index-pruned exact sweep over delta-maintained spaces; "
        "bitwise-identical to adpar-exact",
    )
    registry.register(
        "adpar-weighted",
        WeightedSolver,
        "exact under per-dimension weights and an l1/l2/linf norm",
    )
    registry.register(
        "onedim",
        OneDimSolver,
        "Baseline2: one-parameter-at-a-time refinement (§5.2.1)",
    )
    registry.register(
        "rtree",
        RTreeSolver,
        "Baseline3: R-tree MBB scan (§5.2.1)",
    )
    registry.register(
        "bruteforce",
        BruteForceSolver,
        "ADPaRB: exhaustive k-subset enumeration; exact, exponential",
    )
    return registry


_DEFAULT_REGISTRY = _builtin_registry()


def default_solver_registry() -> SolverRegistry:
    """The process-wide registry with the built-in backends."""
    return _DEFAULT_REGISTRY
