"""The unified recommendation engine layer.

All deployment traffic — batch, streaming, CLI, simulator, experiment
runners — flows through :class:`RecommendationEngine`:

* planner backends are pluggable via :class:`PlannerRegistry`
  (``batch-greedy``, ``payoff-dp``, ``baseline-greedy``,
  ``batch-bruteforce``),
* ADPaR solver backends are pluggable via :class:`SolverRegistry`
  (``adpar-exact``, ``adpar-incremental``, ``adpar-weighted``,
  ``onedim``, ``rtree``, ``bruteforce``), all sharing one
  :class:`~repro.core.relaxation.RelaxationSpace` per (ensemble,
  availability),
* :class:`EngineCache` memoizes workforce aggregates, ADPaR results and
  the relaxation geometry across calls and engines,
* :class:`EngineSession` carries the streaming ledger (admission,
  revocation, deferred-retry) with a vectorized burst path
  (:meth:`~EngineSession.submit_many`) and an O(1)-retry deferred queue
  whose entries carry their precomputed aggregates
  (:class:`DeferredEntry`).

The legacy :class:`repro.Aggregator` and
:class:`repro.StreamingAggregator` remain as thin shims over this layer.
"""

from repro.engine.cache import (
    CacheStats,
    CachingWorkforceComputer,
    EngineCache,
    IncrementalSpaceCache,
    ensemble_fingerprint,
)
from repro.engine.engine import RecommendationEngine
from repro.engine.registry import (
    Planner,
    PlannerContext,
    PlannerRegistry,
    default_registry,
)
from repro.engine.session import DeferredEntry, EngineSession, drive_stream
from repro.engine.solvers import (
    AdparSolver,
    SolverContext,
    SolverRegistry,
    default_solver_registry,
    solver_options_key,
)
from repro.exceptions import UnknownPlannerError, UnknownSolverError

__all__ = [
    "RecommendationEngine",
    "EngineSession",
    "DeferredEntry",
    "drive_stream",
    "EngineCache",
    "IncrementalSpaceCache",
    "CacheStats",
    "CachingWorkforceComputer",
    "ensemble_fingerprint",
    "Planner",
    "PlannerContext",
    "PlannerRegistry",
    "default_registry",
    "UnknownPlannerError",
    "AdparSolver",
    "SolverContext",
    "SolverRegistry",
    "default_solver_registry",
    "solver_options_key",
    "UnknownSolverError",
]
