"""The unified recommendation engine layer.

All deployment traffic — batch, streaming, CLI, simulator, experiment
runners — flows through :class:`RecommendationEngine`:

* planner backends are pluggable via :class:`PlannerRegistry`
  (``batch-greedy``, ``payoff-dp``, ``baseline-greedy``,
  ``batch-bruteforce``),
* :class:`EngineCache` memoizes workforce aggregates and ADPaR results
  across calls and engines,
* :class:`EngineSession` carries the streaming ledger (admission,
  revocation, deferred-retry).

The legacy :class:`repro.Aggregator` and
:class:`repro.StreamingAggregator` remain as thin shims over this layer.
"""

from repro.engine.cache import (
    CacheStats,
    CachingWorkforceComputer,
    EngineCache,
    ensemble_fingerprint,
)
from repro.engine.engine import RecommendationEngine
from repro.engine.registry import (
    Planner,
    PlannerContext,
    PlannerRegistry,
    default_registry,
)
from repro.engine.session import EngineSession
from repro.exceptions import UnknownPlannerError

__all__ = [
    "RecommendationEngine",
    "EngineSession",
    "EngineCache",
    "CacheStats",
    "CachingWorkforceComputer",
    "ensemble_fingerprint",
    "Planner",
    "PlannerContext",
    "PlannerRegistry",
    "default_registry",
    "UnknownPlannerError",
]
