"""The shared workforce/estimation cache behind the recommendation engine.

Per-request model inversion (§3.2 step 1-2) and ADPaR fallbacks are pure
functions of *(ensemble, workforce configuration, request parameters, k)*
— plus, for ADPaR, *(solver backend, norm, weights)* — they do not
depend on request identity.  Every entry point used to re-fit them from
scratch per call; the engine instead routes all traffic through one
:class:`EngineCache` keyed by the ensemble's content fingerprint, so
repeated parameters (the common case on a platform serving templated
deployment requests) are answered from memory.  The cache also holds the
per-(ensemble, availability) :class:`RelaxationSpace` every solver
backend shares, and the solver instances themselves.

The cache is bounded LRU per section and safe to share across engines —
entries are frozen dataclasses keyed by flat value tuples.

Thread safety: every LRU section carries its own lock (held only for the
dict operation, never while computing a value), and hit/miss counters are
updated under a dedicated stats lock so accounting stays exact under
concurrent traffic — ``hits + misses`` always equals the number of
probes.  Value computation is deliberately outside any lock: two threads
missing the same key may both compute it, but entries are pure functions
of their key, so the duplicate write is idempotent and decisions are
unaffected.
"""

from __future__ import annotations

import hashlib
import sys
import threading
from collections import OrderedDict
from dataclasses import dataclass, replace

import numpy as np

from repro.core.adpar import ADPaRResult
from repro.core.relaxation import BufferPool, RelaxationSpace, reclaim_space
from repro.core.request import DeploymentRequest
from repro.core.strategy import StrategyEnsemble
from repro.core.workforce import RequestWorkforce, WorkforceComputer
from repro.engine.solvers import (
    AdparSolver,
    SolverContext,
    SolverRegistry,
    default_solver_registry,
    solver_options_key,
)
from repro.exceptions import InfeasibleRequestError

#: Sentinel cached for (params, k) pairs whose ADPaR solve proved infeasible.
_INFEASIBLE = "infeasible"


def ensemble_fingerprint(ensemble: StrategyEnsemble) -> str:
    """Content hash of an ensemble's models and names.

    Two ensembles with identical coefficients and names share cache
    entries regardless of object identity.  The digest is memoized on the
    ensemble instance, so the arrays are hashed once.
    """
    cached = getattr(ensemble, "_fingerprint", None)
    if cached is not None:
        return cached
    digest = hashlib.sha256()
    digest.update(np.ascontiguousarray(ensemble.alpha, dtype=float).tobytes())
    digest.update(np.ascontiguousarray(ensemble.beta, dtype=float).tobytes())
    digest.update("\x00".join(ensemble.names).encode())
    fingerprint = digest.hexdigest()
    ensemble._fingerprint = fingerprint
    return fingerprint


@dataclass
class CacheStats:
    """Hit/miss counters, split by cache section."""

    workforce_hits: int = 0
    workforce_misses: int = 0
    adpar_hits: int = 0
    adpar_misses: int = 0

    @property
    def hits(self) -> int:
        return self.workforce_hits + self.adpar_hits

    @property
    def misses(self) -> int:
        return self.workforce_misses + self.adpar_misses

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class _LRU:
    """A size-bounded mapping with least-recently-used eviction.

    Safe under concurrent get/put: one lock per section, held only for
    the dict operation itself — callers compute values outside it.
    """

    def __init__(self, max_entries: int):
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        # dict.get + move_to_end instead of try/except: misses are the
        # common cold-path case and must not pay exception dispatch.
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key, value) -> None:
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class _ChainEntry:
    """One ensemble's availability chain: head space, anchor, buffers."""

    __slots__ = ("space", "anchor", "pool")

    def __init__(self, space: RelaxationSpace, anchor: float, pool: BufferPool):
        self.space = space
        self.anchor = anchor
        self.pool = pool


class IncrementalSpaceCache:
    """Delta-maintained :class:`RelaxationSpace` chains across availability.

    Keyed by ensemble fingerprint; each entry holds the chain *head* —
    the space at the most recently requested availability — plus the
    availability the chain was last fully rebuilt at (its *anchor*) and
    a :class:`~repro.core.relaxation.BufferPool` of recycled arrays.  A
    tick within ``drift_threshold`` of the anchor derives the next head
    with :meth:`RelaxationSpace.shifted` — per-column delta
    re-estimation plus sort-order repair on warm pooled buffers —
    instead of an O(n log n) rebuild; past the threshold the chain
    re-anchors with a full build, bounding how far repair chains stray
    from a fresh argsort's memory layout.  Either way the returned
    space is bitwise-identical to ``RelaxationSpace(ensemble,
    availability)``.

    Retired heads are destructively reclaimed into the pool *only* when
    their reference count proves no caller still holds them (and, per
    buffer, no derived space shares them), so handing spaces to
    long-lived solver contexts stays safe — such spaces simply opt out
    of recycling.

    Unlike the pure-value LRU sections, chain advancement is serialized
    under one lock: reclamation transfers buffer ownership, which is
    not an idempotent recompute.
    """

    def __init__(self, max_entries: int = 64, drift_threshold: float = 0.25):
        if drift_threshold <= 0:
            raise ValueError(
                f"drift_threshold must be > 0, got {drift_threshold}"
            )
        self._entries = _LRU(max_entries)
        self.drift_threshold = float(drift_threshold)
        self._lock = threading.Lock()
        #: Chain telemetry — exported via :meth:`stats_view`.
        self.hits = 0
        self.shifts = 0
        self.rebuilds = 0
        self.reclaimed = 0

    def space_at(
        self, ensemble: StrategyEnsemble, availability: float
    ) -> RelaxationSpace:
        """The space at ``availability``, derived from the chain head."""
        availability = float(availability)
        key = ensemble_fingerprint(ensemble)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                space = RelaxationSpace(ensemble, availability)
                self._entries.put(
                    key, _ChainEntry(space, availability, BufferPool())
                )
                self.rebuilds += 1
                return space
            head = entry.space
            if head.availability == availability:
                self.hits += 1
                return head
            if abs(availability - entry.anchor) > self.drift_threshold:
                space = RelaxationSpace(ensemble, availability)
                entry.anchor = availability
                self.rebuilds += 1
            else:
                space = head.shifted(availability, pool=entry.pool)
                self.shifts += 1
            entry.space = space
            self._retire(head, entry.pool)
            return space

    def _retire(self, head: RelaxationSpace, pool: BufferPool) -> None:
        # Three references when nobody else holds the retired head: the
        # caller's local, this frame's parameter, and the getrefcount
        # argument.  Callers that kept the space keep it valid.
        if sys.getrefcount(head) == 3:
            self.reclaimed += reclaim_space(head, pool)

    def stats_view(self) -> "dict[str, int]":
        """JSON-native chain counters (hits/shifts/rebuilds/reclaimed)."""
        return {
            "hits": self.hits,
            "shifts": self.shifts,
            "rebuilds": self.rebuilds,
            "reclaimed": self.reclaimed,
        }

    def __len__(self) -> int:
        return len(self._entries)


#: Cache identity of one per-request workforce aggregate: a flat tuple
#: ``(fingerprint, mode, aggregation, eligibility_bound, quality, cost,
#: latency, k)``.  Flat on purpose — the streaming burst path hashes one
#: key per arriving request, and a flat tuple hashes in one C-level pass
#: where a nested dataclass key pays two Python ``__hash__`` frames.
_WorkforceKey = tuple


class EngineCache:
    """Shared cache for workforce aggregates, ADPaR solvers and results.

    One instance may back many :class:`~repro.engine.RecommendationEngine`
    objects (e.g. one per task type, or three planner backends over the
    same batch) — anything keyed on the same (ensemble fingerprint,
    workforce configuration, request parameters) reuses prior work.
    """

    def __init__(
        self,
        max_workforce_entries: int = 262_144,
        max_adpar_entries: int = 65_536,
        max_solver_entries: int = 64,
        max_space_entries: int = 64,
    ):
        self._workforce = _LRU(max_workforce_entries)
        self._adpar_results = _LRU(max_adpar_entries)
        self._adpar_solvers = _LRU(max_solver_entries)
        self._spaces = _LRU(max_space_entries)
        #: Delta-maintained space chains; exact-availability hits still
        #: come from the LRU above, but every miss is derived through
        #: the chain so nearby availabilities repair instead of rebuild.
        self.space_chain = IncrementalSpaceCache(max_entries=max_space_entries)
        self.stats = CacheStats()
        # Counter increments are load/add/store in CPython — racy across
        # threads without this; accounting must stay exact (hits + misses
        # == probes) for the stats envelope to be trustworthy.
        self._stats_lock = threading.Lock()

    def _count_workforce(self, hits: int, misses: int) -> None:
        with self._stats_lock:
            self.stats.workforce_hits += hits
            self.stats.workforce_misses += misses

    def _count_adpar(self, hits: int, misses: int) -> None:
        with self._stats_lock:
            self.stats.adpar_hits += hits
            self.stats.adpar_misses += misses

    # ------------------------------------------------------------- workforce
    def lookup_workforce(self, key: _WorkforceKey) -> "RequestWorkforce | None":
        hit = self._workforce.get(key)
        if hit is None:
            self._count_workforce(0, 1)
        else:
            self._count_workforce(1, 0)
        return hit

    def store_workforce(self, key: _WorkforceKey, need: RequestWorkforce) -> None:
        self._workforce.put(key, need)

    def lookup_workforce_many(
        self, keys: list
    ) -> "list[RequestWorkforce | None]":
        """Bulk :meth:`lookup_workforce`: one stats update for the batch.

        The streaming burst path probes thousands of keys per call;
        per-key method dispatch and counter increments are measurable
        there, so hits/misses are tallied once.
        """
        get = self._workforce.get
        results = [get(key) for key in keys]
        hits = sum(1 for hit in results if hit is not None)
        self._count_workforce(hits, len(results) - hits)
        return results

    def store_workforce_many(
        self, pairs: "list[tuple[_WorkforceKey, RequestWorkforce]]"
    ) -> None:
        """Bulk :meth:`store_workforce` for a freshly computed block."""
        for key, need in pairs:
            self._workforce.put(key, need)

    # ----------------------------------------------------------------- adpar
    def relaxation_space(
        self, ensemble: StrategyEnsemble, availability: float
    ) -> RelaxationSpace:
        """The (cached) shared unified-space geometry for one context.

        Every solver backend created through this cache for the same
        (ensemble, availability) reads the same space — the geometry is
        built once and reused.
        """
        key = (ensemble_fingerprint(ensemble), float(availability))
        space = self._spaces.get(key)
        if space is None:
            # Misses route through the incremental chain: when a nearby
            # availability was built before (streaming windows, figure
            # sweeps), the space is repaired from it rather than rebuilt
            # — bitwise the same either way.  Spaces retained here are
            # reference-protected from buffer reclamation.
            space = self.space_chain.space_at(ensemble, float(availability))
            self._spaces.put(key, space)
        return space

    def relaxation_space_at(
        self, ensemble: StrategyEnsemble, availability: float
    ) -> RelaxationSpace:
        """The chain-head space at a *streaming* availability tick.

        Unlike :meth:`relaxation_space`, the result is not pinned in the
        exact-availability LRU: successive ticks retire their
        predecessor, whose buffers are recycled once no caller holds it.
        This is the engine-session reserve/complete/revoke path, where
        each availability value is typically seen once.
        """
        return self.space_chain.space_at(ensemble, float(availability))

    def adpar_solver(
        self,
        ensemble: StrategyEnsemble,
        availability: float,
        solver: str = "adpar-exact",
        options: "dict | None" = None,
        registry: "SolverRegistry | None" = None,
    ) -> AdparSolver:
        """A (cached) ADPaR solver backend for one estimation context.

        Keyed by (ensemble fingerprint, availability, backend name,
        canonical options, registry) — e.g. two ``adpar-weighted``
        solvers with different norms are distinct entries, as are two
        registries binding the same name to different factories — but
        all share the cached :class:`RelaxationSpace`.
        """
        registry = registry if registry is not None else default_solver_registry()
        key = (
            ensemble_fingerprint(ensemble),
            float(availability),
            solver,
            solver_options_key(options),
            registry,
        )
        hit = self._adpar_solvers.get(key)
        if hit is None:
            context = SolverContext(
                ensemble=ensemble,
                availability=float(availability),
                space=self.relaxation_space(ensemble, availability),
            )
            hit = registry.create(solver, context, options)
            self._adpar_solvers.put(key, hit)
        return hit

    def _adpar_key(
        self,
        ensemble: StrategyEnsemble,
        availability: float,
        request: DeploymentRequest,
        solver: str,
        options: "dict | None",
        registry: "SolverRegistry | None",
    ) -> tuple:
        return (
            ensemble_fingerprint(ensemble),
            float(availability),
            request.params,
            request.k,
            solver,
            solver_options_key(options),
            registry if registry is not None else default_solver_registry(),
        )

    def adpar_solve(
        self,
        ensemble: StrategyEnsemble,
        availability: float,
        request: DeploymentRequest,
        solver: str = "adpar-exact",
        options: "dict | None" = None,
        registry: "SolverRegistry | None" = None,
    ) -> ADPaRResult:
        """Cached single-request solve; infeasibility is cached too."""
        key = self._adpar_key(ensemble, availability, request, solver, options, registry)
        hit = self._adpar_results.get(key)
        if hit is not None:
            self._count_adpar(1, 0)
            if hit is _INFEASIBLE:
                raise InfeasibleRequestError(
                    f"cannot admit k={request.k} strategies (cached verdict)"
                )
            return hit
        self._count_adpar(0, 1)
        backend = self.adpar_solver(ensemble, availability, solver, options, registry)
        try:
            result = backend.solve(request)
        except InfeasibleRequestError:
            self._adpar_results.put(key, _INFEASIBLE)
            raise
        self._adpar_results.put(key, result)
        return result

    def adpar_solve_batch(
        self,
        ensemble: StrategyEnsemble,
        availability: float,
        requests: "list[DeploymentRequest]",
        solver: str = "adpar-exact",
        options: "dict | None" = None,
        registry: "SolverRegistry | None" = None,
    ) -> "list[ADPaRResult | None]":
        """Cached batch solve; ``None`` marks an infeasible request.

        Cache hits are answered in place, duplicate (params, k) pairs
        within the batch are solved once, and the remaining misses go to
        the backend's :meth:`~repro.engine.solvers.AdparSolver.solve_batch`
        in a single call so the per-request geometry is amortized.
        """
        results: "list[ADPaRResult | None]" = [None] * len(requests)
        missing: "list[tuple[tuple, DeploymentRequest]]" = []
        pending: "dict[tuple, list[int]]" = {}
        hits = misses = 0
        for i, request in enumerate(requests):
            key = self._adpar_key(
                ensemble, availability, request, solver, options, registry
            )
            hit = self._adpar_results.get(key)
            if hit is not None:
                hits += 1
                results[i] = None if hit is _INFEASIBLE else hit
                continue
            misses += 1
            if key in pending:
                pending[key].append(i)
                continue
            pending[key] = [i]
            missing.append((key, request))
        self._count_adpar(hits, misses)
        if not missing:
            return results
        backend = self.adpar_solver(ensemble, availability, solver, options, registry)
        feasible: "list[tuple[tuple, DeploymentRequest]]" = []
        for key, request in missing:
            if request.k > len(ensemble):
                # The one infeasibility every backend shares: no relaxation
                # can conjure strategies that are not in S.
                self._adpar_results.put(key, _INFEASIBLE)
            else:
                feasible.append((key, request))
        if feasible:
            try:
                solved: "list[ADPaRResult | None]" = backend.solve_batch(
                    [request for _, request in feasible]
                )
            except InfeasibleRequestError:
                # A backend refused mid-batch (every request resolves or
                # none does in solve_batch): re-solve per request so one
                # infeasible request cannot abort its batchmates.
                solved = []
                for _key, request in feasible:
                    try:
                        solved.append(backend.solve(request))
                    except InfeasibleRequestError:
                        solved.append(None)
            for (key, _request), result in zip(feasible, solved):
                if result is None:
                    self._adpar_results.put(key, _INFEASIBLE)
                    continue
                self._adpar_results.put(key, result)
                for i in pending[key]:
                    results[i] = result
        return results

    # ----------------------------------------------------------------- sizes
    def occupancy(self) -> "dict[str, dict[str, int]]":
        """Entries and capacity per cache section (the ``stats`` wire view).

        JSON-native by construction, so the service can embed it in the
        ``stats`` response without a bespoke codec.
        """
        view = {
            name: {"entries": len(lru), "capacity": lru.max_entries}
            for name, lru in (
                ("workforce", self._workforce),
                ("adpar_results", self._adpar_results),
                ("adpar_solvers", self._adpar_solvers),
                ("spaces", self._spaces),
            )
        }
        view["space_chain"] = {
            "entries": len(self.space_chain),
            "capacity": self.space_chain._entries.max_entries,
            **self.space_chain.stats_view(),
        }
        return view

    def __len__(self) -> int:
        return len(self._workforce) + len(self._adpar_results)


class CachingWorkforceComputer(WorkforceComputer):
    """A :class:`WorkforceComputer` that reads/writes an :class:`EngineCache`.

    Decision-for-decision identical to the plain computer: cache entries
    *are* the plain computer's outputs, re-labelled with the caller's
    request id on the way out.
    """

    def __init__(
        self,
        ensemble: StrategyEnsemble,
        cache: EngineCache,
        mode: str = "paper",
        aggregation: str = "sum",
        eligibility: str = "pool",
        availability: "float | None" = None,
    ):
        super().__init__(
            ensemble,
            mode=mode,
            aggregation=aggregation,
            eligibility=eligibility,
            availability=availability,
        )
        self.cache = cache
        self._key_prefix = (
            ensemble_fingerprint(ensemble),
            self.mode,
            self.aggregation,
            self._eligibility_bound(),
        )

    def _key(self, request: DeploymentRequest) -> _WorkforceKey:
        params = request.params
        return self._key_prefix + (
            params.quality,
            params.cost,
            params.latency,
            request.k,
        )

    @staticmethod
    def _relabel(
        need: RequestWorkforce, request: DeploymentRequest
    ) -> RequestWorkforce:
        if need.request_id == request.request_id:
            return need
        return replace(need, request_id=request.request_id)

    def aggregate(self, request: DeploymentRequest) -> RequestWorkforce:
        key = self._key(request)
        hit = self.cache.lookup_workforce(key)
        if hit is not None:
            return self._relabel(hit, request)
        need = super().aggregate(request)
        self.cache.store_workforce(key, need)
        return need

    def aggregate_all(
        self, requests: "list[DeploymentRequest]"
    ) -> list[RequestWorkforce]:
        # Keys are built exactly once per request and probed through the
        # bulk cache API; only the misses reach the broadcasted NumPy
        # pass.  This is the streaming burst hot path (EngineSession
        # .submit_many), so per-request Python overhead is kept minimal.
        keys = [self._key(request) for request in requests]
        results = self.cache.lookup_workforce_many(keys)
        missing: list[DeploymentRequest] = []
        missing_at: list[int] = []
        pending: dict = {}
        for i, hit in enumerate(results):
            if hit is not None:
                results[i] = self._relabel(hit, requests[i])
                continue
            key = keys[i]
            if key in pending:
                # Duplicate parameters within one batch: compute once.
                pending[key].append(i)
            else:
                missing.append(requests[i])
                missing_at.append(i)
                pending[key] = [i]
        if missing:
            computed = super().aggregate_all(missing)
            self.cache.store_workforce_many(
                [(keys[i], need) for i, need in zip(missing_at, computed)]
            )
            for i, need in zip(missing_at, computed):
                results[i] = need
                for j in pending[keys[i]][1:]:
                    results[j] = self._relabel(need, requests[j])
        return results  # type: ignore[return-value]
