"""Spatial indexing substrate (from-scratch R-tree) used by Baseline3."""

from repro.index.rtree import RTree, RTreeNode

__all__ = ["RTree", "RTreeNode"]
