"""A from-scratch R-tree over 3-D points.

The paper's Baseline3 (§5.2.1) indexes strategy points with an R-tree
(Beckmann et al.) and scans minimum bounding boxes for one containing
exactly ``k`` strategies.  No third-party spatial index is available
offline, so this module implements the classic structure:

* Guttman-style insertion with least-enlargement descent and quadratic
  split.
* Sort-Tile-Recursive (STR) bulk loading for building large static indexes
  quickly (this is what the experiments use).
* Range queries, node iteration (for the MBB scan), and structural
  invariant checks used by the property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

import numpy as np

from repro.geometry.box import Box3
from repro.geometry.point import Point3


@dataclass
class RTreeNode:
    """One R-tree node: a leaf holds point entries, an inner node holds children."""

    is_leaf: bool
    entries: list = field(default_factory=list)  # leaf: (Point3, payload)
    children: "list[RTreeNode]" = field(default_factory=list)
    mbb: "Box3 | None" = None

    def recompute_mbb(self) -> None:
        """Recompute this node's minimum bounding box from its contents."""
        if self.is_leaf:
            points = [point for point, _ in self.entries]
        else:
            points = []
            for child in self.children:
                if child.mbb is None:
                    child.recompute_mbb()
                points.extend([child.mbb.lo, child.mbb.hi])
        self.mbb = Box3.bounding(points) if points else None

    def count_points(self) -> int:
        """Number of points stored in this subtree."""
        if self.is_leaf:
            return len(self.entries)
        return sum(child.count_points() for child in self.children)


class RTree:
    """R-tree over :class:`Point3` with optional integer payloads."""

    def __init__(self, max_entries: int = 8):
        if max_entries < 4:
            raise ValueError(f"max_entries must be >= 4, got {max_entries}")
        self.max_entries = max_entries
        self.min_entries = max(2, max_entries // 2)
        self.root = RTreeNode(is_leaf=True)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    # ------------------------------------------------------------------ build
    @classmethod
    def bulk_load(
        cls,
        points: Sequence[Point3],
        payloads: "Sequence[int] | None" = None,
        max_entries: int = 8,
    ) -> "RTree":
        """Build a packed R-tree with Sort-Tile-Recursive loading.

        STR sorts by x, slices into vertical slabs, sorts each slab by y,
        tiles into runs, sorts runs by z and packs leaves of ``max_entries``
        points; parent levels are packed the same way over child MBB
        centers.
        """
        tree = cls(max_entries=max_entries)
        pts = list(points)
        if payloads is None:
            payloads = list(range(len(pts)))
        if len(payloads) != len(pts):
            raise ValueError("payloads must match points in length")
        if not pts:
            return tree
        leaves = tree._pack_leaves(pts, list(payloads))
        tree.root = tree._pack_upward(leaves)
        tree._size = len(pts)
        return tree

    def _pack_leaves(self, points: list[Point3], payloads: list[int]) -> list[RTreeNode]:
        cap = self.max_entries
        n = len(points)
        order = sorted(range(n), key=lambda i: (points[i].x, points[i].y, points[i].z))
        leaf_count = int(np.ceil(n / cap))
        slab_count = max(1, int(np.ceil(np.sqrt(leaf_count))))
        slab_size = int(np.ceil(n / slab_count))
        leaves: list[RTreeNode] = []
        for s in range(0, n, slab_size):
            slab = order[s : s + slab_size]
            slab.sort(key=lambda i: (points[i].y, points[i].z, points[i].x))
            for t in range(0, len(slab), cap):
                chunk = slab[t : t + cap]
                leaf = RTreeNode(
                    is_leaf=True,
                    entries=[(points[i], payloads[i]) for i in chunk],
                )
                leaf.recompute_mbb()
                leaves.append(leaf)
        return leaves

    def _pack_upward(self, nodes: list[RTreeNode]) -> RTreeNode:
        cap = self.max_entries
        while len(nodes) > 1:
            nodes.sort(
                key=lambda nd: (
                    (nd.mbb.lo.x + nd.mbb.hi.x),
                    (nd.mbb.lo.y + nd.mbb.hi.y),
                    (nd.mbb.lo.z + nd.mbb.hi.z),
                )
            )
            parents: list[RTreeNode] = []
            for i in range(0, len(nodes), cap):
                parent = RTreeNode(is_leaf=False, children=nodes[i : i + cap])
                parent.recompute_mbb()
                parents.append(parent)
            nodes = parents
        return nodes[0]

    # ----------------------------------------------------------------- insert
    def insert(self, point: Point3, payload: "int | None" = None) -> None:
        """Insert one point (Guttman descent + quadratic split on overflow)."""
        if payload is None:
            payload = self._size
        leaf, path = self._choose_leaf(point)
        leaf.entries.append((point, payload))
        leaf.recompute_mbb()
        self._size += 1
        self._handle_overflow(leaf, path)
        for node in reversed(path):
            node.recompute_mbb()

    def _choose_leaf(self, point: Point3) -> tuple[RTreeNode, list[RTreeNode]]:
        node = self.root
        path: list[RTreeNode] = []
        point_box = Box3(point, point)
        while not node.is_leaf:
            path.append(node)
            best = None
            best_key = None
            for child in node.children:
                enlargement = child.mbb.enlargement(point_box)
                key = (enlargement, child.mbb.volume())
                if best_key is None or key < best_key:
                    best_key = key
                    best = child
            node = best
        return node, path

    def _handle_overflow(self, node: RTreeNode, path: list[RTreeNode]) -> None:
        while True:
            count = len(node.entries) if node.is_leaf else len(node.children)
            if count <= self.max_entries:
                break
            left, right = self._quadratic_split(node)
            if path:
                parent = path.pop()
                parent.children.remove(node)
                parent.children.extend([left, right])
                parent.recompute_mbb()
                node = parent
            else:
                new_root = RTreeNode(is_leaf=False, children=[left, right])
                new_root.recompute_mbb()
                self.root = new_root
                break

    def _quadratic_split(self, node: RTreeNode) -> tuple[RTreeNode, RTreeNode]:
        if node.is_leaf:
            items = node.entries
            boxes = [Box3(p, p) for p, _ in items]
        else:
            items = node.children
            boxes = [child.mbb for child in items]
        seed_a, seed_b = self._pick_seeds(boxes)
        groups: list[list[int]] = [[seed_a], [seed_b]]
        group_boxes = [boxes[seed_a], boxes[seed_b]]
        remaining = [i for i in range(len(items)) if i not in (seed_a, seed_b)]
        while remaining:
            # Stop distributing freely if one group must absorb the rest to
            # reach min_entries.
            for g in (0, 1):
                need = self.min_entries - len(groups[g])
                if need > 0 and need >= len(remaining):
                    groups[g].extend(remaining)
                    for i in remaining:
                        group_boxes[g] = group_boxes[g].union(boxes[i])
                    remaining = []
                    break
            if not remaining:
                break
            # Pick the item with the largest preference difference.
            best_i = None
            best_diff = -1.0
            for i in remaining:
                d0 = group_boxes[0].enlargement(boxes[i])
                d1 = group_boxes[1].enlargement(boxes[i])
                diff = abs(d0 - d1)
                if diff > best_diff:
                    best_diff = diff
                    best_i = i
                    best_d = (d0, d1)
            g = 0 if best_d[0] <= best_d[1] else 1
            groups[g].append(best_i)
            group_boxes[g] = group_boxes[g].union(boxes[best_i])
            remaining.remove(best_i)

        def make(indices: list[int]) -> RTreeNode:
            if node.is_leaf:
                fresh = RTreeNode(is_leaf=True, entries=[items[i] for i in indices])
            else:
                fresh = RTreeNode(is_leaf=False, children=[items[i] for i in indices])
            fresh.recompute_mbb()
            return fresh

        return make(groups[0]), make(groups[1])

    @staticmethod
    def _pick_seeds(boxes: list[Box3]) -> tuple[int, int]:
        worst = -1.0
        pair = (0, 1)
        for i in range(len(boxes)):
            for j in range(i + 1, len(boxes)):
                waste = (
                    boxes[i].union(boxes[j]).volume()
                    - boxes[i].volume()
                    - boxes[j].volume()
                )
                if waste > worst:
                    worst = waste
                    pair = (i, j)
        return pair

    # ------------------------------------------------------------------ query
    def query_box(self, box: Box3) -> list[tuple[Point3, int]]:
        """All (point, payload) pairs inside the closed ``box``."""
        results: list[tuple[Point3, int]] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.mbb is None or not node.mbb.intersects(box):
                continue
            if node.is_leaf:
                results.extend(
                    (p, payload) for p, payload in node.entries if box.contains(p)
                )
            else:
                stack.extend(node.children)
        return results

    def iter_nodes(self) -> Iterator[RTreeNode]:
        """Depth-first iteration over all nodes (Baseline3's MBB scan)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            if not node.is_leaf:
                stack.extend(node.children)

    # ------------------------------------------------------------- invariants
    def check_invariants(self) -> None:
        """Raise ``AssertionError`` if any structural invariant is violated.

        Checked: MBBs tightly contain contents, fanout bounds hold for
        non-root nodes, all leaves are at the same depth, and the point
        count matches ``len(tree)``.
        """
        if self._size == 0:
            assert self.root.is_leaf and not self.root.entries
            return
        leaf_depths: set[int] = set()
        total = 0

        def visit(node: RTreeNode, depth: int, is_root: bool) -> None:
            nonlocal total
            count = len(node.entries) if node.is_leaf else len(node.children)
            if not is_root:
                assert count >= 1, "non-root node is empty"
                assert count <= self.max_entries, "node overflows max_entries"
            if node.is_leaf:
                leaf_depths.add(depth)
                total += count
                for point, _ in node.entries:
                    assert node.mbb.contains(point), "leaf MBB does not contain point"
            else:
                for child in node.children:
                    assert node.mbb.contains(child.mbb.lo), "MBB misses child lo"
                    assert node.mbb.contains(child.mbb.hi), "MBB misses child hi"
                    visit(child, depth + 1, False)

        visit(self.root, 0, True)
        assert len(leaf_depths) == 1, f"leaves at unequal depths: {leaf_depths}"
        assert total == self._size, f"stored {total} points, expected {self._size}"
