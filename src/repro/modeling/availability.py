"""Worker availability as a discrete probability distribution.

§2.1: availability is a discrete random variable over the *proportion* of
suitable workers available within the deployment horizon; StratRec works
with its expectation.  The paper's running example: 50% chance of 700 and
50% chance of 900 out of 1000 suitable workers ⇒ E[W] = 0.8.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.utils.validation import check_probability_vector


@dataclass(frozen=True)
class AvailabilityDistribution:
    """Discrete pdf over availability fractions in ``[0, 1]``."""

    fractions: tuple[float, ...]
    probabilities: tuple[float, ...]

    def __post_init__(self):
        probs = check_probability_vector("probabilities", self.probabilities)
        fracs = np.asarray(self.fractions, dtype=float)
        if fracs.shape != probs.shape:
            raise ValueError("fractions and probabilities must have equal length")
        if ((fracs < 0) | (fracs > 1)).any():
            raise ValueError("availability fractions must lie in [0, 1]")

    @classmethod
    def point(cls, fraction: float) -> "AvailabilityDistribution":
        """A deterministic availability level."""
        return cls((float(fraction),), (1.0,))

    @classmethod
    def from_pairs(
        cls, pairs: Iterable[tuple[float, float]]
    ) -> "AvailabilityDistribution":
        """Build from ``(fraction, probability)`` pairs."""
        pairs = list(pairs)
        if not pairs:
            raise ValueError("need at least one (fraction, probability) pair")
        fractions, probabilities = zip(*pairs)
        return cls(tuple(map(float, fractions)), tuple(map(float, probabilities)))

    @classmethod
    def from_samples(
        cls, samples: Sequence[float], bins: int = 10
    ) -> "AvailabilityDistribution":
        """Empirical pdf from observed availability fractions (platform history).

        Samples are histogrammed into ``bins`` equal-width cells over
        ``[0, 1]``; each non-empty cell contributes its within-cell mean with
        its relative frequency.
        """
        arr = np.asarray(list(samples), dtype=float)
        if arr.size == 0:
            raise ValueError("need at least one sample")
        if ((arr < 0) | (arr > 1)).any():
            raise ValueError("samples must lie in [0, 1]")
        if bins < 1:
            raise ValueError("bins must be >= 1")
        edges = np.linspace(0.0, 1.0, bins + 1)
        which = np.clip(np.digitize(arr, edges) - 1, 0, bins - 1)
        fractions = []
        probabilities = []
        for b in range(bins):
            mask = which == b
            if mask.any():
                fractions.append(float(arr[mask].mean()))
                probabilities.append(float(mask.sum()) / arr.size)
        return cls(tuple(fractions), tuple(probabilities))

    def expectation(self) -> float:
        """Expected availability ``E[W]`` — the value StratRec plans with."""
        fracs = np.asarray(self.fractions)
        probs = np.asarray(self.probabilities)
        return float((fracs * probs).sum())

    def variance(self) -> float:
        """Variance of the availability fraction."""
        fracs = np.asarray(self.fractions)
        probs = np.asarray(self.probabilities)
        mean = self.expectation()
        return float((probs * (fracs - mean) ** 2).sum())

    def expected_workers(self, pool_size: int) -> float:
        """Expected head-count given a suitable pool of ``pool_size`` workers."""
        if pool_size < 0:
            raise ValueError("pool_size must be >= 0")
        return self.expectation() * pool_size

    def sample(self, rng: np.random.Generator, size: "int | None" = None):
        """Draw availability fractions from the pdf."""
        return rng.choice(
            np.asarray(self.fractions), size=size, p=np.asarray(self.probabilities)
        )
