"""Parameter modeling: linear models, worker availability, calibration."""

from repro.modeling.linear import LinearModel, LinearFit, fit_linear
from repro.modeling.availability import AvailabilityDistribution
from repro.modeling.modelbank import ParamModels, ModelBank
from repro.modeling.calibration import CalibrationResult, calibrate_from_observations

__all__ = [
    "LinearModel",
    "LinearFit",
    "fit_linear",
    "AvailabilityDistribution",
    "ParamModels",
    "ModelBank",
    "CalibrationResult",
    "calibrate_from_observations",
]
