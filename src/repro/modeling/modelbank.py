"""Per-strategy parameter model bundles and the model bank.

:class:`ParamModels` bundles the three linear models (quality, cost,
latency) of one strategy for one task type and implements the §3.2
workforce inversion.  :class:`ModelBank` is the registry the Aggregator
consults ("Deployment Strategy Modeling" box in Figure 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

from repro.core.params import TriParams
from repro.exceptions import UnknownStrategyError
from repro.modeling.linear import LinearModel

_WORKFORCE_MODES = ("paper", "strict")


def _threshold_workforce(model: LinearModel, target: float, lower_bound: bool) -> float:
    """Workforce at which ``model`` meets a threshold.

    ``lower_bound=True`` means the parameter must reach *at least*
    ``target`` (quality); ``False`` means *at most* ``target``
    (cost/latency).  Returns 0.0 when the threshold already holds with no
    workers, ``inf`` when no workforce in ``[0, ∞)`` can meet it.
    """
    if model.alpha == 0:
        satisfied = model.beta >= target if lower_bound else model.beta <= target
        return 0.0 if satisfied else math.inf
    w = model.solve_for_input(target)
    # Determine on which side of w the threshold holds.
    grows_toward_target = model.alpha > 0 if lower_bound else model.alpha < 0
    if grows_toward_target:
        # Need w or more workers; negative w means always satisfied.
        return max(w, 0.0)
    # Threshold holds for w or fewer workers: satisfied at zero workforce
    # if w >= 0, impossible otherwise.  Under the paper's uniform max-rule
    # the solved value itself is used; the caller decides.
    return max(w, 0.0) if w >= 0 else math.inf


@dataclass(frozen=True)
class ParamModels:
    """The (quality, cost, latency) linear models of one strategy."""

    quality: LinearModel
    cost: LinearModel
    latency: LinearModel

    @classmethod
    def constant(cls, params: TriParams) -> "ParamModels":
        """Models with α = 0 pinning the parameters at ``params``."""
        return cls(
            quality=LinearModel(0.0, params.quality),
            cost=LinearModel(0.0, params.cost),
            latency=LinearModel(0.0, params.latency),
        )

    def estimate(self, availability: float) -> TriParams:
        """Estimated parameters at availability ``W`` (Equation 4), clipped
        to the normalized ``[0, 1]`` range."""
        clip = lambda v: min(max(float(v), 0.0), 1.0)
        return TriParams(
            quality=clip(self.quality.predict(availability)),
            cost=clip(self.cost.predict(availability)),
            latency=clip(self.latency.predict(availability)),
        )

    def workforce_components(self, request: TriParams) -> tuple[float, float, float]:
        """``(w_q, w_c, w_l)`` — per-parameter workforce by Eq. 4 inversion.

        Quality needs *at least* its threshold, cost/latency *at most*
        theirs.  Each component is the minimal workforce making its own
        constraint hold (0 if free, ``inf`` if impossible).
        """
        w_q = _threshold_workforce(self.quality, request.quality, lower_bound=True)
        w_c = _threshold_workforce(self.cost, request.cost, lower_bound=False)
        w_l = _threshold_workforce(self.latency, request.latency, lower_bound=False)
        return (w_q, w_c, w_l)

    def workforce_required(self, request: TriParams, mode: str = "paper") -> float:
        """Workforce requirement ``w_ij`` for one (deployment, strategy) pair.

        ``mode="paper"`` (default) is the paper's rule: solve each equality
        and take the max of the three (Figure 3a).  ``mode="strict"``
        recognizes that cost *increases* with workforce, so the cost
        equation is a budget cap: the requirement is ``max(w_q, w_l)``,
        infeasible (``inf``) when that exceeds the cap.
        """
        if mode not in _WORKFORCE_MODES:
            raise ValueError(f"mode must be one of {_WORKFORCE_MODES}, got {mode!r}")
        w_q, w_c, w_l = self.workforce_components(request)
        if mode == "paper":
            return max(w_q, w_c, w_l)
        # strict mode: cost bounds from above.
        requirement = max(w_q, w_l)
        if self.cost.alpha > 0:
            cap = self.cost.solve_for_input(request.cost)
            if requirement > cap + 1e-12:
                return math.inf
        elif self.cost.alpha == 0 and self.cost.beta > request.cost + 1e-12:
            return math.inf
        # Decreasing cost models (alpha < 0) relax with workforce; w_c above
        # already contributes the floor.
        if self.cost.alpha < 0:
            requirement = max(requirement, w_c)
        return requirement


class ModelBank:
    """Registry of :class:`ParamModels` keyed by (task_type, strategy name).

    Filled by calibration from historical deployments and consulted by the
    Aggregator when estimating strategy parameters for incoming requests.
    """

    def __init__(self):
        self._models: dict[tuple[str, str], ParamModels] = {}

    def register(self, task_type: str, strategy_name: str, models: ParamModels) -> None:
        """Register (replacing any previous entry)."""
        self._models[(task_type, strategy_name)] = models

    def get(self, task_type: str, strategy_name: str) -> ParamModels:
        """Look up models; raises :class:`UnknownStrategyError` if absent."""
        try:
            return self._models[(task_type, strategy_name)]
        except KeyError:
            raise UnknownStrategyError(
                f"no models for task_type={task_type!r}, strategy={strategy_name!r}"
            ) from None

    def __contains__(self, key: tuple[str, str]) -> bool:
        return key in self._models

    def __len__(self) -> int:
        return len(self._models)

    def items(self) -> Iterator[tuple[tuple[str, str], ParamModels]]:
        """Iterate over ((task_type, strategy_name), models) pairs."""
        return iter(sorted(self._models.items()))

    def strategies_for(self, task_type: str) -> list[str]:
        """Strategy names with models for ``task_type``."""
        return sorted(name for (task, name) in self._models if task == task_type)
