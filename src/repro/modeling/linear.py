"""Linear parameter models (Equation 4): ``parameter = α·w + β``.

Each (strategy, task-type, parameter) combination carries one such model.
The forward direction estimates the parameter at a given worker
availability; the inverse direction (``solve_for_input``) recovers the
workforce needed to hit a requested threshold, which is how the workforce
requirement matrix of §3.2 is computed.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from repro.stats.significance import SlopeSignificance, linear_fit_significance


@dataclass(frozen=True)
class LinearModel:
    """``value(w) = alpha * w + beta`` over availability ``w ∈ [0, 1]``."""

    alpha: float
    beta: float

    def __post_init__(self):
        if not (math.isfinite(self.alpha) and math.isfinite(self.beta)):
            raise ValueError(f"alpha/beta must be finite, got {self.alpha}, {self.beta}")

    @property
    def increasing(self) -> bool:
        """True iff the parameter grows with availability (quality, cost)."""
        return self.alpha > 0

    @property
    def decreasing(self) -> bool:
        """True iff the parameter shrinks with availability (latency)."""
        return self.alpha < 0

    def predict(self, w: "float | np.ndarray") -> "float | np.ndarray":
        """Parameter value at availability ``w``."""
        return self.alpha * w + self.beta

    def solve_for_input(self, target: float) -> float:
        """Availability at which the model hits ``target`` (may fall outside [0,1]).

        Raises ``ZeroDivisionError``-style ``ValueError`` for constant models;
        callers handle those explicitly because the feasibility answer is
        then all-or-nothing.
        """
        if self.alpha == 0:
            raise ValueError("constant model has no unique solution")
        return (target - self.beta) / self.alpha

    def as_tuple(self) -> tuple[float, float]:
        """``(alpha, beta)`` — the form Table 6 reports."""
        return (self.alpha, self.beta)


@dataclass(frozen=True)
class LinearFit:
    """A fitted :class:`LinearModel` plus goodness-of-fit diagnostics."""

    model: LinearModel
    r_squared: float
    residual_std: float
    significance: SlopeSignificance

    @property
    def alpha(self) -> float:
        return self.model.alpha

    @property
    def beta(self) -> float:
        return self.model.beta


def fit_linear(
    availability: Iterable[float],
    values: Iterable[float],
    confidence: float = 0.90,
) -> LinearFit:
    """OLS-fit a :class:`LinearModel` from observed (availability, value) pairs.

    This is the curve-fitting step of §5.1.1 question 2; ``confidence``
    defaults to the paper's 90% interval.
    """
    x = np.asarray(list(availability), dtype=float)
    y = np.asarray(list(values), dtype=float)
    if x.size != y.size:
        raise ValueError(f"availability and values differ in length ({x.size} vs {y.size})")
    if x.size < 3:
        raise ValueError("need at least 3 observations to fit a line with diagnostics")
    if np.allclose(x, x[0]):
        raise ValueError("availability values are all identical; slope is unidentifiable")
    sig = linear_fit_significance(x, y, confidence=confidence)
    model = LinearModel(alpha=sig.slope, beta=sig.intercept)
    residuals = y - model.predict(x)
    dof = max(x.size - 2, 1)
    residual_std = float(np.sqrt((residuals**2).sum() / dof))
    return LinearFit(
        model=model,
        r_squared=sig.r_squared,
        residual_std=residual_std,
        significance=sig,
    )
