"""Calibration: fit per-(task, strategy) parameter models from observations.

The real-data pipeline of §5.1.1: deploy a (task type, strategy) pair at
several availability levels, observe quality/cost/latency, fit the linear
models and register them in a :class:`~repro.modeling.modelbank.ModelBank`.
Table 6 is exactly the (α, β) table this produces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.modeling.linear import LinearFit, fit_linear
from repro.modeling.modelbank import ModelBank, ParamModels


@dataclass(frozen=True)
class Observation:
    """One deployment's observed operating point."""

    availability: float
    quality: float
    cost: float
    latency: float


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted models plus diagnostics for one (task type, strategy) pair."""

    task_type: str
    strategy_name: str
    quality_fit: LinearFit
    cost_fit: LinearFit
    latency_fit: LinearFit

    @property
    def models(self) -> ParamModels:
        """The fitted :class:`ParamModels`, ready for the model bank."""
        return ParamModels(
            quality=self.quality_fit.model,
            cost=self.cost_fit.model,
            latency=self.latency_fit.model,
        )

    def rows(self) -> list[list]:
        """Table 6-style rows: parameter name, α, β, R²."""
        return [
            ["Quality", self.quality_fit.alpha, self.quality_fit.beta, self.quality_fit.r_squared],
            ["Cost", self.cost_fit.alpha, self.cost_fit.beta, self.cost_fit.r_squared],
            ["Latency", self.latency_fit.alpha, self.latency_fit.beta, self.latency_fit.r_squared],
        ]


def calibrate_from_observations(
    task_type: str,
    strategy_name: str,
    observations: Sequence[Observation],
    confidence: float = 0.90,
) -> CalibrationResult:
    """Fit the three linear models from observed deployments."""
    observations = list(observations)
    if len(observations) < 3:
        raise ValueError(
            f"need at least 3 observations to calibrate, got {len(observations)}"
        )
    availability = [o.availability for o in observations]
    return CalibrationResult(
        task_type=task_type,
        strategy_name=strategy_name,
        quality_fit=fit_linear(availability, [o.quality for o in observations], confidence),
        cost_fit=fit_linear(availability, [o.cost for o in observations], confidence),
        latency_fit=fit_linear(availability, [o.latency for o in observations], confidence),
    )


def calibrate_bank(
    results: Iterable[CalibrationResult], bank: "ModelBank | None" = None
) -> ModelBank:
    """Register calibration results into a model bank."""
    if bank is None:
        bank = ModelBank()
    for result in results:
        bank.register(result.task_type, result.strategy_name, result.models)
    return bank
