"""The declarative workload platform: scenario catalog + service simulation.

Workloads are data now: a frozen ``ScenarioSpec`` describes the
ensemble, the requests, the arrival process and the engine knobs, and
the ``ScenarioRegistry`` catalogs named families (the paper's §5.2.2
defaults plus flash crowds, heavy tails, deferred churn, ...).  The
service materializes a spec on its side of the wire — a `repro serve`
client sends a few hundred bytes, never 10k strategies — and answers
with one structured SimulationReport.

Run:  python examples/scenario_catalog.py
"""

import json

from repro.api import EngineService, SimulateRequest, StatsRequest
from repro.platform import PAPER_WINDOWS, PlatformSimulator, WorkerPool
from repro.platform.worker import generate_workers
from repro.workloads import default_scenario_registry

registry = default_scenario_registry()
print(f"{len(registry.names())} scenario families in the catalog:")
for name in registry.names():
    print(f"  {name:26s} [{registry.get(name).kind}]")

# --- one service, several scenario families -------------------------------
service = EngineService()
print("\nSimulating three families through one EngineService:")
for name, overrides in (
    ("paper-batch-small", None),
    ("flash-crowd", {"m_requests": 400}),
    ("paper-adpar", None),
):
    report = service.handle(SimulateRequest(name=name, overrides=overrides)).report
    print(f"\n{report.summary()}")

# Sweeps are spec overrides; unknown fields fail with the typed
# `invalid_spec` error instead of a 500.
print("\nAvailability sweep over the heavy-tail family:")
for availability in (0.2, 0.5, 0.8):
    report = service.handle(
        SimulateRequest(
            name="heavy-tail", overrides={"availability": availability}
        )
    ).report
    print(
        f"  W={availability:.2f}: satisfied={report.satisfied:3d} "
        f"alternative={report.alternative:3d}"
    )

# The wire form of the same thing — exactly what POST /v1/simulate takes.
envelope = SimulateRequest(
    name="mixture-of-distributions", overrides={"m_requests": 20}
).to_dict()
print(f"\nWire envelope ({len(json.dumps(envelope))} bytes): {envelope}")
body = service.handle_dict(envelope)
print(
    f"→ {body['type']}: satisfied={body['report']['satisfied']} "
    f"of {body['report']['arrivals']}"
)

# Service observability: pool + cache occupancy over the sweep.
stats = service.handle(StatsRequest())
print(
    f"\nService stats: engines={stats.engines}/{stats.max_engines} "
    f"workloads={stats.workloads} hit_rate={stats.hit_rate:.0%}"
)
for section, usage in stats.occupancy.items():
    print(f"  cache[{section}]: {usage['entries']}/{usage['capacity']}")

# --- closed loop: a scenario against a live deployment window -------------
pool = WorkerPool(generate_workers(160, seed=5))
simulator = PlatformSimulator(pool, seed=6, service=service)
observation, batch_report = simulator.run_scenario(
    "paper-batch-small", PAPER_WINDOWS[1]
)
print(
    f"\nClosed loop in {observation.window.name}: observed availability "
    f"{observation.availability:.2f} → {batch_report.satisfied_count} satisfied, "
    f"{batch_report.alternative_count} alternatives"
)
