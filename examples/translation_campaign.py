"""A sentence-translation campaign, end to end (the §5.1 workflow).

1. Estimate worker availability from simulated platform history
   (three deployment windows, repeated HITs — Figure 11's protocol).
2. Calibrate linear parameter models per strategy by deploying probe
   tasks along an availability ladder (Table 6's protocol).
3. Ask StratRec for a deployment strategy under the §5.1.2 thresholds
   (quality >= 70%, cost <= $14 of a $20 crew budget, latency <= 72 h).
4. Execute the campaign with the recommended strategy and compare against
   an unguided mirror deployment (Figure 13's protocol).

Run:  python examples/translation_campaign.py
"""

import numpy as np

from repro import DeploymentRequest, StratRec, TriParams
from repro.execution import ExecutionEngine, make_translation_tasks
from repro.experiments.fig13_effectiveness import build_model_bank
from repro.platform import (
    AvailabilityRecord,
    HistoryLog,
    PAPER_WINDOWS,
    PlatformSimulator,
    WorkerPool,
    generate_workers,
)

SEED = 2020

# --- 1. Availability from platform history --------------------------------
pool = WorkerPool(generate_workers(400, seed=SEED))
simulator = PlatformSimulator(pool, seed=SEED + 1)
history = HistoryLog()
for window in PAPER_WINDOWS:
    for _ in range(4):
        obs = simulator.run_window(window, "translation")
        history.add(
            AvailabilityRecord(window.name, "translation", "SEQ-IND-CRO", obs.availability)
        )
availability = history.estimate_distribution(task_type="translation", bins=8)
print(f"Estimated availability pdf: E[W] = {availability.expectation():.3f}")

# --- 2. + 3. Consult StratRec ----------------------------------------------
bank = build_model_bank(("translation",))
stratrec = StratRec(bank, availability)
request = DeploymentRequest(
    request_id="translation-campaign",
    params=TriParams(quality=0.70, cost=0.70, latency=1.0),
    k=2,
    task_type="translation",
)
advice = stratrec.recommend_strategy(request)
print(f"Recommended strategies: {', '.join(advice.strategy_names)}")
print(f"Request satisfiable as stated: {advice.satisfied}\n")
strategy = advice.best_strategy

# --- 4. Execute guided vs unguided mirrors ---------------------------------
engine = ExecutionEngine()
rng = np.random.default_rng(SEED + 2)
tasks = make_translation_tasks(6, seed=SEED + 3)
workers = pool.recruit("translation", seed=SEED + 4)

guided, unguided = [], []
for task in tasks:
    w = float(np.clip(rng.normal(availability.expectation(), 0.05), 0.3, 1.0))
    guided.append(engine.run(strategy, task, w, workers=workers, guided=True, seed=rng))
    unguided.append(
        engine.run("SIM-COL-CRO", task, w, workers=workers, guided=False, seed=rng)
    )

def describe(label, outcomes):
    print(
        f"{label}: quality {100 * np.mean([o.quality for o in outcomes]):.1f}%, "
        f"cost ${np.mean([o.cost_usd for o in outcomes]):.2f}, "
        f"latency {np.mean([o.latency_hours for o in outcomes]):.1f} h, "
        f"{np.mean([o.edit_count for o in outcomes]):.1f} edits/task"
    )

describe(f"Guided ({strategy})", guided)
describe("Unguided (edit-war prone)", unguided)
