"""Recommending multi-stage workflow strategies (§2.1's Turkomatic case).

With workflow tools a deployment runs several stages, each independently
choosing Structure/Organization/Style — 8^x candidate workflows for x
stages.  Because the per-stage parameter models compose into linear
models again, the whole recommendation machinery applies unchanged: we
enumerate two-stage workflows over the calibrated strategy models, let
BatchStrat pick k of them for a demanding request, and fall back to ADPaR
when even the workflow space cannot satisfy the thresholds.

Run:  python examples/workflow_planning.py
"""

from repro import ADPaRExact, BatchStrat, DeploymentRequest, TriParams
from repro.core.workflow import enumerate_workflows, workflow_ensemble
from repro.experiments.fig13_effectiveness import build_model_bank

AVAILABILITY = 0.8

bank = build_model_bank(("translation",))
workflows = enumerate_workflows(stage_count=2, model_bank=bank, task_type="translation")
ensemble = workflow_ensemble(workflows)
print(f"Enumerated {len(workflows)} two-stage workflows (8 strategies ^ 2 stages)\n")

request = DeploymentRequest(
    request_id="workflow-campaign",
    params=TriParams(quality=0.85, cost=0.9, latency=0.9),
    k=3,
    task_type="translation",
)
outcome = BatchStrat(ensemble, AVAILABILITY, workforce_mode="strict").run(
    [request], "throughput"
)
if outcome.satisfied:
    rec = outcome.satisfied[0]
    print(f"Request {request.params} is satisfiable; recommended workflows:")
    for name in rec.strategy_names:
        print(f"  - {name}")
else:
    print(f"Request {request.params} unsatisfiable even over workflows.")

# A hopeless request: near-perfect quality on a shoestring.
impossible = TriParams(quality=0.99, cost=0.2, latency=0.3)
alternative = ADPaRExact(ensemble, availability=AVAILABILITY).solve(impossible, 3)
q, c, l = alternative.alternative.as_tuple()
print(
    f"\nFor {impossible} ADPaR suggests quality>={q:.2f}, cost<={c:.2f}, "
    f"latency<={l:.2f} (distance {alternative.distance:.3f}):"
)
for name in alternative.strategy_names:
    print(f"  - {name}")
