"""Alternative parameter recommendation (ADPaR) in isolation.

A requester's thresholds admit no strategy; ADPaR-Exact returns the
closest parameters that admit k strategies.  Compares against the two
heuristic baselines and the exponential brute force to show exactness.

Run:  python examples/alternative_parameters.py
"""

from repro import ADPaRExact, StrategyEnsemble
from repro.baselines import OneDimBaseline, RTreeBaseline, adpar_brute_force
from repro.workloads import EnsembleSpec
from repro.workloads.generators import hard_request_for

SEED = 4
K = 5

points = EnsembleSpec(n_strategies=25, distribution="uniform").build_points(SEED)
request = hard_request_for(points, seed=SEED + 1)
ensemble = StrategyEnsemble.from_params(points)

print(f"Original request: {request}  (k={K}, no strategy satisfies it)\n")

exact = ADPaRExact(ensemble).solve(request, K)
brute = adpar_brute_force(ensemble, request, K)
onedim = OneDimBaseline(ensemble).solve(request, K)
rtree = RTreeBaseline(ensemble).solve(request, K)

for name, result in (
    ("ADPaR-Exact", exact),
    ("ADPaRB (brute force)", brute),
    ("Baseline2 (one-dim)", onedim),
    ("Baseline3 (R-tree)", rtree),
):
    q, c, l = result.alternative.as_tuple()
    print(
        f"{name:22s} quality>={q:.3f} cost<={c:.3f} latency<={l:.3f} "
        f"distance={result.distance:.4f} strategies={list(result.strategy_names)}"
    )

assert abs(exact.distance - brute.distance) < 1e-9, "exactness violated!"
print("\nADPaR-Exact matches the exhaustive optimum; baselines relax more than needed.")
