"""Platform-side triage: maximizing throughput vs pay-off over a big batch.

A platform receives a batch of deployment requests against a large
synthetic strategy catalog and must decide which to serve with limited
worker availability (the Problem-1 setting).  Shows the throughput /
pay-off trade-off and the 1/2-approximation backstop in action.

Run:  python examples/platform_triage.py
"""

from repro import BatchStrat
from repro.baselines import BaselineG
from repro.workloads import EnsembleSpec, RequestBatchSpec

SEED = 99
AVAILABILITY = 0.5

# Declarative workload specs: the same objects a `repro serve` client
# would put on the wire in a `simulate` envelope.
ensemble = EnsembleSpec(n_strategies=5000, distribution="uniform").build(SEED)
requests = RequestBatchSpec(m_requests=40, k=5).build(SEED + 1)

for objective in ("throughput", "payoff"):
    solver = BatchStrat(
        ensemble, AVAILABILITY, aggregation="max", workforce_mode="strict"
    )
    outcome = solver.run(requests, objective=objective)
    greedy = BaselineG(
        ensemble, AVAILABILITY, aggregation="max", workforce_mode="strict"
    ).run(requests, objective=objective)
    print(f"--- objective: {objective} ---")
    print(
        f"BatchStrat: value {outcome.objective_value:.2f}, "
        f"{len(outcome.satisfied)} satisfied, "
        f"workforce used {outcome.workforce_used:.3f} / {AVAILABILITY}"
    )
    print(f"BaselineG:  value {greedy.objective_value:.2f} (no backstop)")
    served = [rec.request_id for rec in outcome.satisfied][:8]
    print(f"First served requests: {', '.join(served)}")
    unserved = len(outcome.unsatisfied)
    print(f"{unserved} requests left for ADPaR alternative recommendations\n")
