"""Streaming deployment admission — the paper's §7 open problem.

Requests arrive one at a time through a *session* opened on the
platform's EngineService; the platform admits what fits its worker
availability, answers oversized requests with ADPaR alternatives instead
of bare rejections, recycles workforce when campaigns complete or are
revoked, and retries deferred requests once capacity frees.  Sessions
are addressed by opaque ids, so the same traffic works over
`repro serve` — the typed envelopes used below are exactly what goes on
the wire.

Run:  python examples/streaming_platform.py
"""

import numpy as np

from repro import DeploymentRequest, EngineService, EngineSpec, TriParams
from repro.api import RetryDeferredRequest, SessionOpRequest, SubmitBatchRequest
from repro.core.streaming import StreamStatus
from repro.workloads import EnsembleSpec

SEED = 13
AVAILABILITY = 0.6

ensemble = EnsembleSpec(n_strategies=2000, distribution="uniform").build(SEED)
service = EngineService()
session_id = service.open_session(
    ensemble,
    EngineSpec(
        availability=AVAILABILITY, aggregation="max", workforce_mode="strict"
    ),
)
stream = service.session(session_id)  # in-process handle for scalar submits
rng = np.random.default_rng(SEED + 1)

print(f"Platform opens with availability W = {AVAILABILITY}\n")
active: list[str] = []
for t in range(12):
    request = DeploymentRequest(
        request_id=f"req-{t:02d}",
        params=TriParams(
            quality=float(rng.uniform(0.35, 0.75)),
            cost=float(rng.uniform(0.625, 1.0)),
            latency=float(rng.uniform(0.625, 1.0)),
        ),
        k=3,
    )
    decision = stream.submit(request)
    line = f"t={t:02d} {request.request_id}: {decision.status.value:11s}"
    if decision.status is StreamStatus.ADMITTED:
        active.append(request.request_id)
        line += (
            f" strategies={list(decision.strategy_names)}"
            f" reserved={decision.workforce_reserved:.3f}"
            f" remaining={stream.remaining:.3f}"
        )
    elif decision.status is StreamStatus.ALTERNATIVE:
        q, c, l = decision.alternative.alternative.as_tuple()
        line += f" try (q>={q:.2f}, c<={c:.2f}, l<={l:.2f}) instead"
    print(line)

    # Campaigns finish (or get cancelled) over time, freeing workforce.
    if active and rng.random() < 0.4:
        finished = active.pop(0)
        op = "revoke" if rng.random() < 0.3 else "complete"
        service.handle(
            SessionOpRequest(op=op, session_id=session_id, request_ids=(finished,))
        )
        print(f"      {finished} {op}d; remaining={stream.remaining:.3f}")

# Capacity freed along the way: give deferred requests another chance.
retry = service.handle(RetryDeferredRequest(session_id=session_id))
for decision in retry.decisions:
    print(
        f"retry {decision.request.request_id}: {decision.status.value}"
        f" remaining={stream.remaining:.3f}"
    )

print(
    f"\nadmitted={stream.admitted_count} completed={stream.completed_count} "
    f"revoked={stream.revoked_count} utilization={stream.utilization():.1%}"
)

# High-traffic mode: a whole arrival burst in one envelope (one HTTP
# round trip under `repro serve`), riding the vectorized submit_many
# path.  The decisions are identical to submitting one at a time — the
# model inversions and ADPaR fallbacks just run as two batch passes.
burst = [
    DeploymentRequest(
        request_id=f"burst-{i:03d}",
        params=TriParams(
            quality=float(rng.uniform(0.35, 0.75)),
            cost=float(rng.uniform(0.625, 1.0)),
            latency=float(rng.uniform(0.625, 1.0)),
        ),
        k=3,
    )
    for i in range(200)
]
decisions = service.handle(
    SubmitBatchRequest(session_id=session_id, requests=tuple(burst))
).decisions
by_status: dict[str, int] = {}
for decision in decisions:
    by_status[decision.status.value] = by_status.get(decision.status.value, 0) + 1
print(f"\nburst of {len(burst)} arrivals via submit_many: {by_status}")
