"""Quickstart: recommend deployment strategies for a batch of requests.

Walks the paper's running example (Table 1 / Example 2.1) end to end:
three requesters submit deployment requests with quality/cost/latency
thresholds, the RecommendationEngine satisfies what the workforce
allows, and ADPaR recommends alternative parameters for the rest.

Run:  python examples/quickstart.py
"""

from repro import RecommendationEngine, ResolutionStatus, StrategyEnsemble, TriParams, make_requests

# --- 1. The candidate strategies (Table 1's s1..s4, estimated at W=0.8) ----
strategies = StrategyEnsemble.from_params(
    [
        TriParams(quality=0.50, cost=0.25, latency=0.28),  # s1 = SIM-COL-CRO
        TriParams(quality=0.75, cost=0.33, latency=0.28),  # s2 = SEQ-IND-CRO
        TriParams(quality=0.80, cost=0.50, latency=0.14),  # s3 = SIM-IND-CRO
        TriParams(quality=0.88, cost=0.58, latency=0.14),  # s4 = SIM-IND-HYB
    ]
)

# --- 2. Three deployment requests, each wanting k=3 strategies -------------
requests = make_requests(
    [
        (0.4, 0.17, 0.28),  # d1: modest quality, tiny budget
        (0.8, 0.20, 0.28),  # d2: high quality, tiny budget
        (0.7, 0.83, 0.28),  # d3: high quality, generous budget
    ],
    k=3,
)

# --- 3. Run the middle layer ----------------------------------------------
# The engine is the one seam all traffic flows through: swap planners with
# planner="payoff-dp", share caches across engines, or open a streaming
# session with engine.open_session().
engine = RecommendationEngine(strategies, availability=0.8, objective="throughput")
report = engine.resolve(requests)

print(f"Worker availability (expected): {report.availability}")
print(f"Satisfied {report.satisfied_count} of {len(requests)} requests\n")

for resolution in report.resolutions:
    request = resolution.request
    if resolution.status is ResolutionStatus.SATISFIED:
        print(
            f"{request.request_id}: SATISFIED with strategies "
            f"{', '.join(resolution.strategy_names)}"
        )
    elif resolution.status is ResolutionStatus.ALTERNATIVE:
        q, c, l = resolution.params.as_tuple()
        print(
            f"{request.request_id}: cannot be satisfied as stated; closest "
            f"alternative is quality>={q:.2f}, cost<={c:.2f}, latency<={l:.2f} "
            f"(distance {resolution.distance:.3f}) with "
            f"{', '.join(resolution.strategy_names)}"
        )
    else:
        print(f"{request.request_id}: infeasible (fewer than k strategies exist)")
