"""Quickstart: recommend deployment strategies for a batch of requests.

Walks the paper's running example (Table 1 / Example 2.1) end to end:
three requesters submit deployment requests with quality/cost/latency
thresholds, the platform's EngineService satisfies what the workforce
allows, and ADPaR recommends alternative parameters for the rest.

Run:  python examples/quickstart.py
"""

from repro import (
    EngineService,
    EngineSpec,
    EnsembleRef,
    ResolutionStatus,
    StrategyEnsemble,
    TriParams,
    make_requests,
)
from repro.api import ResolveRequest

# --- 1. The candidate strategies (Table 1's s1..s4, estimated at W=0.8) ----
strategies = StrategyEnsemble.from_params(
    [
        TriParams(quality=0.50, cost=0.25, latency=0.28),  # s1 = SIM-COL-CRO
        TriParams(quality=0.75, cost=0.33, latency=0.28),  # s2 = SEQ-IND-CRO
        TriParams(quality=0.80, cost=0.50, latency=0.14),  # s3 = SIM-IND-CRO
        TriParams(quality=0.88, cost=0.58, latency=0.14),  # s4 = SIM-IND-HYB
    ]
)

# --- 2. Three deployment requests, each wanting k=3 strategies -------------
requests = make_requests(
    [
        (0.4, 0.17, 0.28),  # d1: modest quality, tiny budget
        (0.8, 0.20, 0.28),  # d2: high quality, tiny budget
        (0.7, 0.83, 0.28),  # d3: high quality, generous budget
    ],
    k=3,
)

# --- 3. Run the middle layer ----------------------------------------------
# EngineService is the one public seam: a typed, versioned request in, a
# typed response out.  The same envelope serializes losslessly to JSON
# (request.to_dict()), which is exactly what `repro serve` answers over
# HTTP; in-process callers just skip the transport.  Swap planners with
# EngineSpec(planner="payoff-dp"), or stream via SubmitBatchRequest.
service = EngineService()
request = ResolveRequest(
    ensemble=EnsembleRef.of(strategies),
    requests=tuple(requests),
    spec=EngineSpec(availability=0.8, objective="throughput"),
)
report = service.handle(request).report

print(f"Worker availability (expected): {report.availability}")
print(f"Satisfied {report.satisfied_count} of {len(requests)} requests\n")

for resolution in report.resolutions:
    request = resolution.request
    if resolution.status is ResolutionStatus.SATISFIED:
        print(
            f"{request.request_id}: SATISFIED with strategies "
            f"{', '.join(resolution.strategy_names)}"
        )
    elif resolution.status is ResolutionStatus.ALTERNATIVE:
        q, c, l = resolution.params.as_tuple()
        print(
            f"{request.request_id}: cannot be satisfied as stated; closest "
            f"alternative is quality>={q:.2f}, cost<={c:.2f}, latency<={l:.2f} "
            f"(distance {resolution.distance:.3f}) with "
            f"{', '.join(resolution.strategy_names)}"
        )
    else:
        print(f"{request.request_id}: infeasible (fewer than k strategies exist)")
