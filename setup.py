"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so PEP 517 editable
installs (which build an editable wheel) fail; this shim lets
``pip install -e .`` fall back to the legacy ``setup.py develop`` path.
All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
